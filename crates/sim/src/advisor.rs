//! The paper's §4 conclusions as a design advisor.
//!
//! §4 does not crown a single winner: "The optimum scheme depends on all
//! the factors above, in particular: the cache size ratio, block size
//! ratio, and the tag width." This module turns that paragraph into code —
//! given a configuration and workload it measures all schemes, picks the
//! cheapest low-cost implementation, and explains the choice in the
//! paper's own terms.
//!
//! # Example
//!
//! ```
//! use seta_cache::CacheConfig;
//! use seta_sim::advisor::recommend;
//! use seta_trace::gen::AtumLikeConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut trace = AtumLikeConfig::paper_like();
//! trace.segments = 2;
//! trace.refs_per_segment = 20_000;
//! let rec = recommend(
//!     CacheConfig::direct_mapped(4 * 1024, 16)?,
//!     CacheConfig::new(32 * 1024, 32, 4)?,
//!     trace,
//!     42,
//!     16,
//! );
//! println!("{}", rec.render());
//! assert!(!rec.reasons.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::runner::{simulate, standard_strategies};
use serde::{Deserialize, Serialize};
use seta_cache::CacheConfig;
use seta_trace::gen::{AtumLike, AtumLikeConfig};

/// A low-cost implementation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Serial frame-order scan.
    Naive,
    /// MRU-ordered serial scan.
    Mru,
    /// Two-step partial compare.
    Partial,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scheme::Naive => "naive",
            Scheme::Mru => "MRU",
            Scheme::Partial => "partial compare",
        };
        f.write_str(name)
    }
}

/// A measured recommendation with the paper's reasoning attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The cheapest low-cost scheme on this configuration and workload.
    pub scheme: Scheme,
    /// Measured probes per L2 access: (scheme label, total).
    pub measured: Vec<(String, f64)>,
    /// The configuration factors §4 names, evaluated here.
    pub reasons: Vec<String>,
    /// The traditional implementation's total, for reference (always the
    /// probe minimum; its cost is board area, not probes).
    pub traditional_total: f64,
}

impl Recommendation {
    /// Renders the recommendation as human-readable lines.
    pub fn render(&self) -> String {
        let mut out = format!("recommended low-cost scheme: {}\n", self.scheme);
        for (name, total) in &self.measured {
            out.push_str(&format!("  {name:<28} {total:.2} probes/access\n"));
        }
        out.push_str(&format!(
            "  {:<28} {:.2} probes/access (a×t-wide memory, a comparators)\n",
            "traditional", self.traditional_total
        ));
        for r in &self.reasons {
            out.push_str(&format!("  - {r}\n"));
        }
        out
    }
}

/// Measures all schemes on the given configuration and workload and
/// recommends the cheapest low-cost implementation, with §4's factors as
/// the explanation.
///
/// # Panics
///
/// Panics if the configurations do not form a valid hierarchy or the
/// trace configuration is invalid.
pub fn recommend(
    l1: CacheConfig,
    l2: CacheConfig,
    trace: AtumLikeConfig,
    seed: u64,
    tag_bits: u32,
) -> Recommendation {
    let out = simulate(
        l1,
        l2,
        AtumLike::new(trace, seed),
        &standard_strategies(l2.associativity(), tag_bits),
    );
    // standard_strategies order: traditional, naive, mru, partial.
    let totals: Vec<f64> = out
        .strategies
        .iter()
        .map(|s| s.probes.total_mean())
        .collect();
    let candidates = [
        (Scheme::Naive, totals[1]),
        (Scheme::Mru, totals[2]),
        (Scheme::Partial, totals[3]),
    ];
    let (scheme, _) = candidates
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("three candidates");

    // §4's named factors, evaluated for this configuration.
    let mut reasons = Vec::new();
    let block_ratio = l2.block_size() / l1.block_size();
    let size_ratio = l2.size_bytes() / l1.size_bytes();
    let local_miss = out.hierarchy.local_miss_ratio();
    if block_ratio >= 4 && size_ratio >= 64 {
        reasons.push(format!(
            "block-size ratio {block_ratio} and cache-size ratio {size_ratio} are large — \
             \"the MRU scheme is better when the ratio of level two to level one block sizes \
             is large (4 or more) and when the ratio of ... cache sizes is large (64 or more)\""
        ));
    } else {
        reasons.push(format!(
            "block-size ratio {block_ratio} / cache-size ratio {size_ratio} do not reach the \
             paper's MRU-favouring thresholds (4 and 64)"
        ));
    }
    if tag_bits >= 32 {
        reasons.push(format!(
            "{tag_bits}-bit tags give wide partial compares — \"the partial compare scheme is \
             better when the tag width is increased\""
        ));
    }
    reasons.push(format!(
        "measured L2 local miss ratio {local_miss:.3} — \"[partial] is better when the local \
         miss ratio of the level two cache is increased\" (misses cost the MRU scheme a+1 probes)"
    ));

    Recommendation {
        scheme,
        measured: out
            .strategies
            .iter()
            .skip(1)
            .map(|s| (s.name.clone(), s.probes.total_mean()))
            .collect(),
        reasons,
        traditional_total: totals[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> AtumLikeConfig {
        let mut t = AtumLikeConfig::paper_like();
        t.segments = 2;
        t.refs_per_segment = 30_000;
        t
    }

    fn rec(assoc: u32) -> Recommendation {
        recommend(
            CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1"),
            CacheConfig::new(16 * 1024, 32, assoc).expect("valid L2"),
            small_trace(),
            0xCACE,
            16,
        )
    }

    #[test]
    fn recommends_the_measured_minimum() {
        let r = rec(8);
        let best = r
            .measured
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("three schemes")
            .0
            .clone();
        let matches = match r.scheme {
            Scheme::Naive => best == "naive",
            Scheme::Mru => best == "mru",
            Scheme::Partial => best.starts_with("partial"),
        };
        assert!(matches, "scheme {:?} vs measured best {best}", r.scheme);
    }

    #[test]
    fn traditional_is_the_probe_floor() {
        let r = rec(8);
        for (name, total) in &r.measured {
            assert!(
                r.traditional_total <= *total + 1e-9,
                "{name} ({total}) beats traditional ({})",
                r.traditional_total
            );
        }
    }

    #[test]
    fn reasons_quote_section_four_factors() {
        let r = rec(4);
        assert!(r.reasons.len() >= 2);
        let text = r.reasons.join(" ");
        assert!(text.contains("block-size ratio"), "{text}");
        assert!(text.contains("local miss ratio"), "{text}");
    }

    #[test]
    fn wide_tags_add_the_tag_width_reason() {
        let r = recommend(
            CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1"),
            CacheConfig::new(16 * 1024, 32, 4).expect("valid L2"),
            small_trace(),
            1,
            32,
        );
        assert!(
            r.reasons.iter().any(|s| s.contains("32-bit tags")),
            "{:?}",
            r.reasons
        );
    }

    #[test]
    fn render_is_complete() {
        let s = rec(4).render();
        assert!(s.contains("recommended"), "{s}");
        assert!(s.contains("traditional"), "{s}");
        assert!(s.contains("probes/access"), "{s}");
    }
}
