//! Work-partitioning helpers shared by the sharded sweep runner and the
//! concurrent serve load generator.
//!
//! Both consumers follow the same pattern: split a queue of work into
//! contiguous chunks, then let `N` workers pull chunks off an atomic
//! cursor. [`chunk_ranges`] produces the balanced contiguous split;
//! [`worker_threads`] resolves how many workers to spawn, honouring the
//! `SETA_THREADS` override for reproducible CI runs.

use std::ops::Range;

/// Splits `0..len` into at most `chunks` contiguous, balanced, non-empty
/// ranges covering every index exactly once. The first `len % chunks`
/// ranges are one element longer, so sizes never differ by more than one.
/// Fewer than `chunks` ranges are returned when `len < chunks`; zero when
/// `len == 0`.
///
/// # Example
///
/// ```
/// use seta_sim::partition::chunk_ranges;
///
/// assert_eq!(chunk_ranges(7, 3), vec![0..3, 3..5, 5..7]);
/// assert_eq!(chunk_ranges(2, 4).len(), 2);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len);
    let mut out = Vec::with_capacity(chunks);
    if len == 0 {
        return out;
    }
    let base = len / chunks;
    let extra = len % chunks;
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Worker count for a queue of `queue_len` work items: the `SETA_THREADS`
/// environment override if set (for reproducible CI runs), otherwise the
/// available parallelism — in both cases clamped to the queue length, so a
/// two-shard sweep never spawns a machine's worth of idle workers.
pub fn worker_threads(queue_len: usize) -> usize {
    let requested = std::env::var("SETA_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    requested.min(queue_len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_exactly_once() {
        for len in 0..40 {
            for chunks in 1..10 {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor, "contiguous from the left");
                    assert!(r.end > r.start, "no empty ranges");
                    covered += r.end - r.start;
                    cursor = r.end;
                }
                assert_eq!(covered, len, "len={len} chunks={chunks}");
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        for len in 1..64 {
            for chunks in 1..9 {
                let sizes: Vec<usize> = chunk_ranges(len, chunks).iter().map(|r| r.len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "len={len} chunks={chunks} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn worker_threads_clamps_to_queue_length() {
        assert_eq!(worker_threads(0), 1);
        assert_eq!(worker_threads(1), 1);
        assert!(worker_threads(64) >= 1);
        for n in [0usize, 1, 2, 7, 64] {
            assert!(worker_threads(n) <= n.max(1));
        }
    }
}
