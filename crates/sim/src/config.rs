//! The paper's simulated configurations (Table 3).

use serde::{Deserialize, Serialize};
use seta_cache::{CacheConfig, CacheConfigError};
use seta_trace::gen::AtumLikeConfig;

/// A level-one/level-two geometry pair from the paper's Table 4 grid.
///
/// The level-two associativity is left open — each experiment sweeps it —
/// so the preset stores the L2 capacity and block size only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyPreset {
    /// L1 capacity in bytes.
    pub l1_size: u64,
    /// L1 block size in bytes.
    pub l1_block: u64,
    /// L2 capacity in bytes.
    pub l2_size: u64,
    /// L2 block size in bytes.
    pub l2_block: u64,
}

impl HierarchyPreset {
    /// Creates a preset.
    pub fn new(l1_size: u64, l1_block: u64, l2_size: u64, l2_block: u64) -> Self {
        HierarchyPreset {
            l1_size,
            l1_block,
            l2_size,
            l2_block,
        }
    }

    /// The direct-mapped L1 configuration.
    ///
    /// # Errors
    ///
    /// Propagates invalid geometry.
    pub fn l1(&self) -> Result<CacheConfig, CacheConfigError> {
        CacheConfig::direct_mapped(self.l1_size, self.l1_block)
    }

    /// The L2 configuration at a given associativity.
    ///
    /// # Errors
    ///
    /// Propagates invalid geometry.
    pub fn l2(&self, assoc: u32) -> Result<CacheConfig, CacheConfigError> {
        CacheConfig::new(self.l2_size, self.l2_block, assoc)
    }

    /// The paper's label, e.g. `4K-16 256K-64`.
    pub fn label(&self) -> String {
        fn side(size: u64, block: u64) -> String {
            format!("{}K-{}", size / 1024, block)
        }
        format!(
            "{} {}",
            side(self.l1_size, self.l1_block),
            side(self.l2_size, self.l2_block)
        )
    }
}

impl std::fmt::Display for HierarchyPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The configuration Figures 3–6 use: 16K-16 L1 with a 256K-32 L2.
pub fn figures_preset() -> HierarchyPreset {
    HierarchyPreset::new(16 * 1024, 16, 256 * 1024, 32)
}

/// The eight L1/L2 pairs of Table 4, in the paper's row order.
pub fn table4_presets() -> Vec<HierarchyPreset> {
    const K: u64 = 1024;
    vec![
        HierarchyPreset::new(16 * K, 16, 256 * K, 32),
        HierarchyPreset::new(16 * K, 16, 256 * K, 16),
        HierarchyPreset::new(16 * K, 32, 256 * K, 32),
        HierarchyPreset::new(4 * K, 16, 256 * K, 64),
        HierarchyPreset::new(4 * K, 16, 256 * K, 32),
        HierarchyPreset::new(4 * K, 16, 256 * K, 16),
        HierarchyPreset::new(4 * K, 16, 64 * K, 32),
        HierarchyPreset::new(4 * K, 16, 64 * K, 16),
    ]
}

/// The three L1 configurations of Table 3 with the paper's measured miss
/// ratios, used to calibrate the synthetic workload.
pub fn table3_l1_miss_ratios() -> Vec<(HierarchyPreset, f64)> {
    const K: u64 = 1024;
    vec![
        (HierarchyPreset::new(4 * K, 16, 256 * K, 32), 0.1181),
        (HierarchyPreset::new(16 * K, 16, 256 * K, 32), 0.0657),
        (HierarchyPreset::new(16 * K, 32, 256 * K, 32), 0.0513),
    ]
}

/// The associativities the paper sweeps in Figures 3 and 4.
pub const FIGURE_ASSOCS: [u32; 5] = [1, 2, 4, 8, 16];

/// The associativities of the Table 4 grid.
pub const TABLE4_ASSOCS: [u32; 3] = [4, 8, 16];

/// The full-scale paper trace (23 segments × 350K references).
pub fn paper_trace() -> AtumLikeConfig {
    AtumLikeConfig::paper_like()
}

/// The paper trace shrunk by `factor` for fast runs (structure preserved:
/// multiple segments, flushes between them).
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn paper_trace_scaled(factor: u64) -> AtumLikeConfig {
    AtumLikeConfig::scaled(factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_valid_configs() {
        for p in table4_presets() {
            p.l1().unwrap();
            for a in TABLE4_ASSOCS {
                let l2 = p.l2(a).unwrap();
                assert_eq!(l2.associativity(), a);
            }
        }
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(table4_presets()[0].label(), "16K-16 256K-32");
        assert_eq!(table4_presets()[3].label(), "4K-16 256K-64");
        assert_eq!(figures_preset().label(), "16K-16 256K-32");
    }

    #[test]
    fn table4_has_eight_rows() {
        assert_eq!(table4_presets().len(), 8);
        // Block-size ratio spans 1× to 4× as the paper discusses.
        let ratios: Vec<u64> = table4_presets()
            .iter()
            .map(|p| p.l2_block / p.l1_block)
            .collect();
        assert!(ratios.contains(&1));
        assert!(ratios.contains(&4));
    }

    #[test]
    fn miss_ratio_targets_are_the_published_ones() {
        let t = table3_l1_miss_ratios();
        assert_eq!(t.len(), 3);
        assert!((t[0].1 - 0.1181).abs() < 1e-9);
        assert!((t[1].1 - 0.0657).abs() < 1e-9);
        assert!((t[2].1 - 0.0513).abs() < 1e-9);
    }

    #[test]
    fn scaled_trace_is_smaller() {
        assert!(paper_trace_scaled(50).total_refs() < paper_trace().total_refs());
    }
}
