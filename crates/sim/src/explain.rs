//! The explain analysis pass: attributes every probe a run charges.
//!
//! [`explain`] produces the exact same [`RunOutcome`] as
//! [`simulate`](crate::runner::simulate) — it wraps the same
//! [`Scorer`](crate::runner) over the same hierarchy — while routing every
//! lookup through [`LookupStrategy::lookup_observed`] with a recorder
//! that attributes the probe count to its micro-events: serial tag
//! probes, wide group probes, MRU-list reads, partial-compare step-one
//! probes, and full-compare candidates (true or false matches). The
//! per-strategy totals feed an [`ExplainReport`] that:
//!
//! * reconciles the event totals against the run's `ProbeStats` — the
//!   books must balance exactly, split by read-in vs write-back;
//! * derives the measured MRU-distance distribution `fᵢ` and checks the
//!   MRU strategy's measured hit cost against the paper's
//!   `1 + Σ i·fᵢ` formula to 1e-9;
//! * reconciles partial-compare probes as
//!   `step-one probes + candidates` and false matches as
//!   `candidates − hits`, both exact integer identities;
//! * compares measured means against the closed-form model of
//!   [`seta_core::model`] and flags divergence (the model assumes
//!   uniformly distributed hit positions; real traces are skewed, which
//!   is exactly what the MRU scheme exploits);
//! * keeps bounded diagnostics: per-set heatmaps and a deterministic
//!   1-in-N sample of raw [`ProbeEvent`]s.
//!
//! The report renders as human-readable text ([`ExplainReport::render`])
//! or as a typed JSONL artifact ([`ExplainReport::write_jsonl`]).

use crate::runner::{assemble_outcome, RunOutcome, Scorer};
use serde::{Deserialize, Serialize};
use seta_cache::{CacheConfig, L2Observer, L2RequestKind, L2RequestView, TwoLevel};
use seta_core::lookup::{LookupStrategy, StrategyKind};
use seta_core::{model, ProbeObserver};
use seta_obs::{
    EventRing, PositionHistogram, ProbeEvent, SetHeatmap, SpanBuffer, SpanClock, SpanTrace,
};
use std::io::{self, Write};

/// Knobs for an explain pass. The defaults keep memory bounded at any
/// trace length.
#[derive(Debug, Clone)]
pub struct ExplainConfig {
    /// Sample one L2 request in this many into the raw-event ring.
    pub sample_every: u64,
    /// Raw events retained (oldest overwritten beyond this).
    pub ring_capacity: usize,
    /// Sets listed in the heatmap sections of the report.
    pub heatmap_top: usize,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig {
            sample_every: 1_000,
            ring_capacity: 256,
            heatmap_top: 8,
        }
    }
}

/// Where one strategy's probes went, for one request kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeBreakdown {
    /// Lookups performed.
    pub lookups: u64,
    /// Total probes those lookups cost.
    pub probes: u64,
    /// Serial single-tag probes.
    pub tag_probes: u64,
    /// Wide probes (whole set, or one bank group).
    pub group_probes: u64,
    /// MRU-list reads.
    pub list_reads: u64,
    /// Partial-compare step-one probes (one per subset examined).
    pub step_one_probes: u64,
    /// Stored tags that passed step one and were full-compared.
    pub candidates: u64,
    /// Candidates whose full compare failed.
    pub false_matches: u64,
}

impl ProbeBreakdown {
    fn absorb(&mut self, e: &LookupEvents) {
        self.lookups += 1;
        self.probes += e.probes() as u64;
        self.tag_probes += e.tag_probes as u64;
        self.group_probes += e.group_probes as u64;
        self.list_reads += e.list_reads as u64;
        self.step_one_probes += e.step_one_probes as u64;
        self.candidates += e.candidates as u64;
        self.false_matches += e.false_matches as u64;
    }
}

/// One strategy's full probe attribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyAttribution {
    /// The strategy's name.
    pub name: String,
    /// Events over read-in lookups (hits and misses).
    pub read_in: ProbeBreakdown,
    /// Events over write-back lookups (priced only on the
    /// no-write-back-optimization books).
    pub write_back: ProbeBreakdown,
}

/// How strictly a [`Check`] binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckClass {
    /// An accounting identity of the implementation; failure is a bug.
    Exact,
    /// A closed-form model prediction; divergence is informative (the
    /// model assumes uniform hit positions, traces are skewed).
    Model,
}

/// One cross-check of a measured quantity against an expected one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Check {
    /// What is being compared, e.g. `"mru/hit ≡ 1+Σ i·fᵢ"`.
    pub name: String,
    /// Identity or model prediction.
    pub class: CheckClass,
    /// The measured value.
    pub measured: f64,
    /// The expected value.
    pub expected: f64,
    /// Absolute tolerance for identities; relative for model checks.
    pub tolerance: f64,
    /// Whether measured is within tolerance of expected.
    pub passed: bool,
}

impl Check {
    fn exact(name: impl Into<String>, measured: f64, expected: f64, tolerance: f64) -> Self {
        let passed = (measured - expected).abs() <= tolerance;
        Check {
            name: name.into(),
            class: CheckClass::Exact,
            measured,
            expected,
            tolerance,
            passed,
        }
    }

    fn model(name: impl Into<String>, measured: f64, expected: f64, tolerance: f64) -> Self {
        let passed =
            (measured - expected).abs() <= tolerance * expected.abs().max(f64::MIN_POSITIVE);
        Check {
            name: name.into(),
            class: CheckClass::Model,
            measured,
            expected,
            tolerance,
            passed,
        }
    }
}

/// Sampling bookkeeping for the raw-event ring.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SampleInfo {
    /// Events offered (requests × strategies).
    pub seen: u64,
    /// Events that passed the 1-in-N filter.
    pub sampled: u64,
    /// Sampled events later evicted by newer ones.
    pub overwritten: u64,
    /// The sampling period N (by request sequence number).
    pub every: u64,
}

/// Everything the explain pass measures beyond the [`RunOutcome`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainReport {
    /// L2 associativity.
    pub assoc: u32,
    /// Per-strategy probe attribution.
    pub strategies: Vec<StrategyAttribution>,
    /// Measured MRU-distance distribution `fᵢ` (indexed from 0).
    pub mru_f: Vec<f64>,
    /// Read-in hits behind the distribution.
    pub mru_hits: u64,
    /// `1 + Σ (i+1)·f(i)` implied by the measured distribution.
    pub mru_expected_hit_probes: f64,
    /// The MRU strategy's measured mean hit probes, when present.
    pub mru_measured_hit_mean: Option<f64>,
    /// Identity and model cross-checks.
    pub checks: Vec<Check>,
    /// Most-accessed sets as `(set, accesses, misses)`.
    pub hottest_sets: Vec<(u64, u64, u64)>,
    /// Most-missed sets as `(set, accesses, misses)`.
    pub most_conflicted_sets: Vec<(u64, u64, u64)>,
    /// Distinct L2 sets touched.
    pub touched_sets: usize,
    /// Sampled raw events, oldest first.
    pub events: Vec<ProbeEvent>,
    /// Sampling bookkeeping.
    pub sampling: SampleInfo,
}

impl ExplainReport {
    /// All identity checks passed (model divergence does not count).
    pub fn identities_hold(&self) -> bool {
        self.checks
            .iter()
            .filter(|c| c.class == CheckClass::Exact)
            .all(|c| c.passed)
    }

    /// Model checks that diverge from measurement.
    pub fn model_divergences(&self) -> Vec<&Check> {
        self.checks
            .iter()
            .filter(|c| c.class == CheckClass::Model && !c.passed)
            .collect()
    }

    /// The attribution for a strategy by name.
    pub fn strategy(&self, name: &str) -> Option<&StrategyAttribution> {
        self.strategies.iter().find(|s| s.name == name)
    }

    /// Renders the report as human-readable text.
    pub fn render(&self, outcome: &RunOutcome) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "explain: {} / {}", outcome.l1_label, outcome.l2_label);
        let _ = writeln!(
            s,
            "  {} refs, {} read-ins ({} hits), {} write-backs",
            outcome.hierarchy.processor_refs,
            outcome.hierarchy.read_ins,
            outcome.hierarchy.read_in_hits,
            outcome.hierarchy.write_backs
        );
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "probe attribution (read-ins; write-backs priced on the no-opt books):"
        );
        let _ = writeln!(
            s,
            "  {:<22} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "strategy", "lookups", "probes", "tag", "group", "list", "step1", "cand", "false"
        );
        for a in &self.strategies {
            let r = &a.read_in;
            let _ = writeln!(
                s,
                "  {:<22} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
                a.name,
                r.lookups,
                r.probes,
                r.tag_probes,
                r.group_probes,
                r.list_reads,
                r.step_one_probes,
                r.candidates,
                r.false_matches
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "measured MRU-distance distribution ({} hits):",
            self.mru_hits
        );
        for (i, f) in self.mru_f.iter().enumerate() {
            let bar = "#".repeat((f * 40.0).round() as usize);
            let _ = writeln!(s, "  f[{i}] = {f:.4} {bar}");
        }
        let _ = writeln!(
            s,
            "  1 + Σ (i+1)·fᵢ = {:.6}{}",
            self.mru_expected_hit_probes,
            match self.mru_measured_hit_mean {
                Some(m) => format!("; measured mru hit mean = {m:.6}"),
                None => String::new(),
            }
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "checks:");
        for c in &self.checks {
            let mark = if c.passed { "ok " } else { "FAIL" };
            let class = match c.class {
                CheckClass::Exact => "exact",
                CheckClass::Model => "model",
            };
            let _ = writeln!(
                s,
                "  [{mark}] {class:<5} {:<42} measured {:.6} vs expected {:.6}",
                c.name, c.measured, c.expected
            );
        }
        let diverged = self.model_divergences().len();
        if diverged > 0 {
            let _ = writeln!(
                s,
                "  note: {diverged} model check(s) diverge — the closed-form model assumes"
            );
            let _ = writeln!(
                s,
                "  uniform hit positions; skew toward the MRU end is the paper's point."
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "hottest sets ({} touched):", self.touched_sets);
        for (set, acc, miss) in &self.hottest_sets {
            let _ = writeln!(s, "  set {set:>6}: {acc} accesses, {miss} misses");
        }
        let _ = writeln!(s, "most conflicted sets:");
        for (set, acc, miss) in &self.most_conflicted_sets {
            let _ = writeln!(s, "  set {set:>6}: {miss} misses of {acc} accesses");
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "raw events: {} kept of {} sampled (1 request in {}; {} offered)",
            self.events.len(),
            self.sampling.sampled,
            self.sampling.every,
            self.sampling.seen
        );
        s
    }

    /// Writes the report as typed JSON lines: one `summary` line, one
    /// `strategy` line per strategy, one `mru_distribution` line, one
    /// `check` line per check, `heatmap_set` lines, and one `event` line
    /// per sampled raw event.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `out`.
    pub fn write_jsonl<W: Write>(&self, outcome: &RunOutcome, out: &mut W) -> io::Result<()> {
        let line = serde_json::json!({
            "type": "summary",
            "l1": outcome.l1_label,
            "l2": outcome.l2_label,
            "assoc": self.assoc,
            "refs": outcome.hierarchy.processor_refs,
            "read_ins": outcome.hierarchy.read_ins,
            "read_in_hits": outcome.hierarchy.read_in_hits,
            "write_backs": outcome.hierarchy.write_backs,
            "touched_sets": self.touched_sets,
            "identities_hold": self.identities_hold(),
            "model_divergences": self.model_divergences().len(),
            "sampling": self.sampling,
        });
        writeln!(
            out,
            "{}",
            serde_json::to_string(&line).expect("report serializes")
        )?;
        for (a, r) in self.strategies.iter().zip(&outcome.strategies) {
            let line = serde_json::json!({
                "type": "strategy",
                "name": a.name,
                "read_in": a.read_in,
                "write_back": a.write_back,
                "hit_mean": r.probes.hit_mean(),
                "miss_mean": r.probes.miss_mean(),
                "total_mean": r.probes.total_mean(),
            });
            writeln!(
                out,
                "{}",
                serde_json::to_string(&line).expect("report serializes")
            )?;
        }
        let line = serde_json::json!({
            "type": "mru_distribution",
            "hits": self.mru_hits,
            "f": self.mru_f,
            "expected_hit_probes": self.mru_expected_hit_probes,
            "measured_hit_mean": self.mru_measured_hit_mean,
        });
        writeln!(
            out,
            "{}",
            serde_json::to_string(&line).expect("report serializes")
        )?;
        for c in &self.checks {
            let line = serde_json::json!({"type": "check", "check": c});
            writeln!(
                out,
                "{}",
                serde_json::to_string(&line).expect("report serializes")
            )?;
        }
        for (rank, (set, accesses, misses)) in self.hottest_sets.iter().enumerate() {
            let line = serde_json::json!({
                "type": "heatmap_set",
                "rank_by": "accesses",
                "rank": rank,
                "set": set,
                "accesses": accesses,
                "misses": misses,
            });
            writeln!(
                out,
                "{}",
                serde_json::to_string(&line).expect("report serializes")
            )?;
        }
        for (rank, (set, accesses, misses)) in self.most_conflicted_sets.iter().enumerate() {
            let line = serde_json::json!({
                "type": "heatmap_set",
                "rank_by": "misses",
                "rank": rank,
                "set": set,
                "accesses": accesses,
                "misses": misses,
            });
            writeln!(
                out,
                "{}",
                serde_json::to_string(&line).expect("report serializes")
            )?;
        }
        for e in &self.events {
            let line = serde_json::json!({"type": "event", "event": e});
            writeln!(
                out,
                "{}",
                serde_json::to_string(&line).expect("report serializes")
            )?;
        }
        Ok(())
    }
}

/// Per-lookup event counts, reset before each search.
#[derive(Debug, Clone, Copy, Default)]
struct LookupEvents {
    tag_probes: u32,
    group_probes: u32,
    list_reads: u32,
    step_one_probes: u32,
    candidates: u32,
    false_matches: u32,
}

impl LookupEvents {
    /// Probes implied by the events; must equal the lookup's probe count.
    fn probes(&self) -> u32 {
        self.tag_probes
            + self.group_probes
            + self.list_reads
            + self.step_one_probes
            + self.candidates
    }
}

/// The [`ProbeObserver`] behind the explain pass: one per strategy.
#[derive(Debug, Default)]
struct ProbeRecorder {
    current: LookupEvents,
}

impl ProbeObserver for ProbeRecorder {
    fn tag_probe(&mut self, _way: u8) {
        self.current.tag_probes += 1;
    }
    fn group_probe(&mut self, _group: u32, _ways: u8) {
        self.current.group_probes += 1;
    }
    fn mru_list_read(&mut self) {
        self.current.list_reads += 1;
    }
    fn partial_probe(&mut self, _subset: u32) {
        self.current.step_one_probes += 1;
    }
    fn partial_candidate(&mut self, _way: u8, matched: bool) {
        self.current.candidates += 1;
        if !matched {
            self.current.false_matches += 1;
        }
    }
}

/// The instrumented observer: the plain [`Scorer`] plus event recording.
struct Explainer<'a> {
    scorer: Scorer<'a>,
    /// Monomorphized dispatch for the observed (scalar-reference) path:
    /// built-ins resolve once so the per-access loop skips the vtable,
    /// while routing through exactly the same retained scalar search — the
    /// event stream is unchanged.
    kinds: Vec<Option<StrategyKind>>,
    recorders: Vec<ProbeRecorder>,
    /// Per-strategy (read-in, write-back) event totals.
    totals: Vec<(ProbeBreakdown, ProbeBreakdown)>,
    ring: EventRing,
    heatmap: SetHeatmap,
    positions: PositionHistogram,
    seq: u64,
}

impl<'a> Explainer<'a> {
    fn new(strategies: &'a [Box<dyn LookupStrategy>], assoc: u32, cfg: &ExplainConfig) -> Self {
        Explainer {
            scorer: Scorer::new(strategies, assoc),
            kinds: strategies.iter().map(|s| s.kind()).collect(),
            recorders: strategies
                .iter()
                .map(|_| ProbeRecorder::default())
                .collect(),
            totals: vec![Default::default(); strategies.len()],
            ring: EventRing::new(cfg.ring_capacity, cfg.sample_every),
            heatmap: SetHeatmap::new(),
            positions: PositionHistogram::new(),
            seq: 0,
        }
    }
}

impl L2Observer for Explainer<'_> {
    fn on_l2_request(&mut self, req: &L2RequestView<'_>) {
        // Destructure so the scoring closure borrows the recorders, totals
        // and ring disjointly from the scorer.
        let Explainer {
            scorer,
            kinds,
            recorders,
            totals,
            ring,
            heatmap,
            positions,
            seq,
        } = self;
        heatmap.record(req.set, req.hit);
        if req.kind == L2RequestKind::ReadIn && req.hit {
            if let Some(d) = req.mru_distance {
                positions.record(d);
            }
        }
        let request_seq = *seq;
        *seq += 1;
        scorer.score_with(req, |i, strategy, view, tag| {
            let rec = &mut recorders[i];
            rec.current = LookupEvents::default();
            let lookup = match kinds[i] {
                Some(k) => k.lookup_observed(view, tag, rec),
                None => strategy.lookup_observed(view, tag, rec),
            };
            debug_assert_eq!(
                rec.current.probes(),
                lookup.probes,
                "{} events do not account for its probes",
                strategy.name()
            );
            let (read_in, write_back) = &mut totals[i];
            match req.kind {
                L2RequestKind::ReadIn => read_in.absorb(&rec.current),
                L2RequestKind::WriteBack => write_back.absorb(&rec.current),
            }
            // Sampling is by request: a sampled request keeps every
            // strategy's event, so samples stay comparable across
            // strategies.
            ring.offer(request_seq, || ProbeEvent {
                seq: request_seq,
                strategy: i as u32,
                set: req.set,
                write_back: req.kind == L2RequestKind::WriteBack,
                hit: lookup.is_hit(),
                probes: lookup.probes,
                mru_distance: req.mru_distance.map(|d| d as u32),
                candidates: rec.current.candidates,
                false_matches: rec.current.false_matches,
            });
            lookup
        });
    }
}

/// `t` and `s` from a `partial[t=…,s=…,…]` strategy name.
fn parse_partial(name: &str) -> Option<(u32, u32)> {
    let inner = name.strip_prefix("partial[")?.strip_suffix(']')?;
    let mut t = None;
    let mut s = None;
    for part in inner.split(',') {
        if let Some(v) = part.strip_prefix("t=") {
            t = v.parse().ok();
        } else if let Some(v) = part.strip_prefix("s=") {
            s = v.parse().ok();
        }
    }
    Some((t?, s?))
}

/// Relative tolerance for model checks: the closed-form model assumes
/// uniformly distributed hit positions, so measured means routinely land
/// well away from it — that divergence is the signal, not an error.
const MODEL_TOLERANCE: f64 = 0.05;

fn build_checks(
    outcome: &RunOutcome,
    report_strategies: &[StrategyAttribution],
    positions: &PositionHistogram,
) -> Vec<Check> {
    let a = outcome.assoc;
    let mut checks = Vec::new();

    for (attr, result) in report_strategies.iter().zip(&outcome.strategies) {
        let name = &attr.name;
        let p = &result.probes;
        let read_in_lookups = p.hits.count + p.misses.count;
        let read_in_probes = p.hits.probes + p.misses.probes;
        checks.push(Check::exact(
            format!("{name}/events: read-in lookups"),
            attr.read_in.lookups as f64,
            read_in_lookups as f64,
            0.0,
        ));
        checks.push(Check::exact(
            format!("{name}/events: read-in probes"),
            attr.read_in.probes as f64,
            read_in_probes as f64,
            0.0,
        ));
        checks.push(Check::exact(
            format!("{name}/events: write-back lookups"),
            attr.write_back.lookups as f64,
            result.probes_no_opt.write_backs.count as f64,
            0.0,
        ));
        checks.push(Check::exact(
            format!("{name}/events: write-back probes"),
            attr.write_back.probes as f64,
            result.probes_no_opt.write_backs.probes as f64,
            0.0,
        ));

        if name == "traditional" {
            checks.push(Check::exact(
                "traditional/one probe per lookup",
                attr.read_in.probes as f64,
                attr.read_in.lookups as f64,
                0.0,
            ));
        }
        if a > 1 && name == "naive" {
            if p.misses.count > 0 {
                checks.push(Check::exact(
                    "naive/miss = a",
                    p.miss_mean(),
                    model::naive_miss(a),
                    1e-9,
                ));
            }
            if p.hits.count > 0 {
                checks.push(Check::model(
                    "naive/hit vs (a−1)/2+1",
                    p.hit_mean(),
                    model::naive_hit(a),
                    MODEL_TOLERANCE,
                ));
            }
        }
        if a > 1 && name == "mru" {
            if positions.total() > 0 {
                checks.push(Check::exact(
                    "mru/hit ≡ 1+Σ i·fᵢ",
                    p.hit_mean(),
                    positions.expected_scan_probes(),
                    1e-9,
                ));
            }
            if p.misses.count > 0 {
                checks.push(Check::exact(
                    "mru/miss = a+1",
                    p.miss_mean(),
                    model::mru_miss(a),
                    1e-9,
                ));
            }
            checks.push(Check::exact(
                "mru/one list read per lookup",
                attr.read_in.list_reads as f64,
                attr.read_in.lookups as f64,
                0.0,
            ));
        }
        if a > 1 {
            if let Some((t, s)) = parse_partial(name) {
                checks.push(Check::exact(
                    format!("{name}/probes = step-one + candidates"),
                    attr.read_in.probes as f64,
                    (attr.read_in.step_one_probes + attr.read_in.candidates) as f64,
                    0.0,
                ));
                checks.push(Check::exact(
                    format!("{name}/false matches = candidates − hits"),
                    attr.read_in.false_matches as f64,
                    (attr.read_in.candidates - p.hits.count) as f64,
                    0.0,
                ));
                if a % s == 0 && t / (a / s) >= 1 {
                    let k = model::partial_k(t, a, s);
                    if p.hits.count > 0 {
                        checks.push(Check::model(
                            format!("{name}/hit vs model(k={k})"),
                            p.hit_mean(),
                            model::partial_hit(a, k, s),
                            MODEL_TOLERANCE,
                        ));
                    }
                    if p.misses.count > 0 {
                        checks.push(Check::model(
                            format!("{name}/miss vs s+a/2^k"),
                            p.miss_mean(),
                            model::partial_miss(a, k, s),
                            MODEL_TOLERANCE,
                        ));
                    }
                }
            }
        }
    }

    // The obs-side position histogram and the core-side MRU histogram are
    // fed from the same requests; their implied scan costs must agree.
    if positions.total() > 0 {
        checks.push(Check::exact(
            "positions ≡ core mru histogram",
            positions.expected_scan_probes(),
            outcome.mru_hist.expected_hit_probes(),
            1e-9,
        ));
    }
    checks.push(Check::exact(
        "positions/total = read-in hits",
        positions.total() as f64,
        outcome.hierarchy.read_in_hits as f64,
        0.0,
    ));
    checks
}

/// Runs one fully-instrumented simulation: drives `events` through a
/// fresh two-level hierarchy exactly like
/// [`simulate`](crate::runner::simulate) — the returned [`RunOutcome`] is
/// bit-identical — and attributes every probe to its micro-events.
pub fn explain<I>(
    l1: CacheConfig,
    l2: CacheConfig,
    events: I,
    strategies: &[Box<dyn LookupStrategy>],
    cfg: &ExplainConfig,
) -> (RunOutcome, ExplainReport)
where
    I: IntoIterator<Item = TraceEvent>,
{
    explain_impl(l1, l2, events, strategies, cfg, None)
}

/// [`explain`] with phase spans: identical results, plus a [`SpanTrace`]
/// timing the pass's two phases — `score` (the simulation loop) and
/// `reconcile` (building the attribution report and its cross-checks) —
/// under an `explain` root span carrying the run's reference count.
/// Phase brackets cost two clock reads each; the per-access path is
/// untouched either way.
pub fn explain_traced<I>(
    l1: CacheConfig,
    l2: CacheConfig,
    events: I,
    strategies: &[Box<dyn LookupStrategy>],
    cfg: &ExplainConfig,
) -> (RunOutcome, ExplainReport, SpanTrace)
where
    I: IntoIterator<Item = TraceEvent>,
{
    let mut buf = SpanBuffer::new(0, SpanClock::new());
    let root = buf.open("explain", "run");
    let (outcome, report) = explain_impl(l1, l2, events, strategies, cfg, Some(&mut buf));
    buf.counter(root, "refs", outcome.hierarchy.processor_refs);
    buf.counter(root, "read_ins", outcome.hierarchy.read_ins);
    buf.close(root);
    let mut trace = SpanTrace::new();
    trace.name_track(0, "main");
    trace.absorb(buf);
    (outcome, report, trace)
}

/// The shared explain body; `spans`, when present, receives `score` and
/// `reconcile` phase spans.
fn explain_impl<I>(
    l1: CacheConfig,
    l2: CacheConfig,
    events: I,
    strategies: &[Box<dyn LookupStrategy>],
    cfg: &ExplainConfig,
    mut spans: Option<&mut SpanBuffer>,
) -> (RunOutcome, ExplainReport)
where
    I: IntoIterator<Item = TraceEvent>,
{
    let mut hierarchy = TwoLevel::new(l1, l2).expect("L1 blocks must fit in L2 blocks");
    let mut explainer = Explainer::new(strategies, l2.associativity(), cfg);
    let score = spans.as_deref_mut().map(|b| b.open("score", "phase"));
    hierarchy.run(events, &mut explainer);
    if let (Some(b), Some(id)) = (spans.as_deref_mut(), score) {
        b.close(id);
    }
    let reconcile = spans.as_deref_mut().map(|b| b.open("reconcile", "phase"));
    let Explainer {
        scorer,
        totals,
        ring,
        heatmap,
        positions,
        ..
    } = explainer;
    let outcome = assemble_outcome(&hierarchy, scorer, strategies);

    let attributions: Vec<StrategyAttribution> = strategies
        .iter()
        .zip(totals)
        .map(|(s, (read_in, write_back))| StrategyAttribution {
            name: s.name(),
            read_in,
            write_back,
        })
        .collect();
    let checks = build_checks(&outcome, &attributions, &positions);
    let report = ExplainReport {
        assoc: outcome.assoc,
        mru_f: positions.distribution(),
        mru_hits: positions.total(),
        mru_expected_hit_probes: positions.expected_scan_probes(),
        mru_measured_hit_mean: outcome
            .strategy("mru")
            .filter(|s| s.probes.hits.count > 0)
            .map(|s| s.probes.hit_mean()),
        strategies: attributions,
        checks,
        hottest_sets: heatmap.hottest(cfg.heatmap_top),
        most_conflicted_sets: heatmap.most_conflicted(cfg.heatmap_top),
        touched_sets: heatmap.touched_sets(),
        events: ring.events().copied().collect(),
        sampling: SampleInfo {
            seen: ring.seen(),
            sampled: ring.sampled(),
            overwritten: ring.overwritten(),
            every: ring.sample_every(),
        },
    };
    if let (Some(b), Some(id)) = (spans, reconcile) {
        b.close(id);
    }
    (outcome, report)
}

use seta_trace::TraceEvent;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate, standard_strategies};
    use seta_trace::gen::{AtumLike, AtumLikeConfig};

    fn small_trace(refs: u64, seed: u64) -> AtumLike {
        let mut cfg = AtumLikeConfig::paper_like();
        cfg.segments = 2;
        cfg.refs_per_segment = refs;
        AtumLike::new(cfg, seed)
    }

    fn geometries() -> (CacheConfig, CacheConfig) {
        (
            CacheConfig::direct_mapped(4 * 1024, 16).unwrap(),
            CacheConfig::new(32 * 1024, 32, 4).unwrap(),
        )
    }

    fn run_explain(assoc: u32, refs: u64, seed: u64) -> (RunOutcome, ExplainReport) {
        let l1 = CacheConfig::direct_mapped(4 * 1024, 16).unwrap();
        let l2 = CacheConfig::new(32 * 1024, 32, assoc).unwrap();
        explain(
            l1,
            l2,
            small_trace(refs, seed),
            &standard_strategies(assoc, 16),
            &ExplainConfig::default(),
        )
    }

    #[test]
    fn outcome_is_bit_identical_to_plain_simulate() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let plain = simulate(l1, l2, small_trace(10_000, 21), &strategies);
        let (explained, _) = explain(
            l1,
            l2,
            small_trace(10_000, 21),
            &strategies,
            &ExplainConfig::default(),
        );
        assert_eq!(explained.hierarchy, plain.hierarchy);
        assert_eq!(explained.mru_hist, plain.mru_hist);
        assert_eq!(explained.mru_update_fraction, plain.mru_update_fraction);
        for (a, b) in explained.strategies.iter().zip(&plain.strategies) {
            assert_eq!(a.probes, b.probes, "{}", a.name);
            assert_eq!(a.probes_no_opt, b.probes_no_opt, "{}", a.name);
        }
    }

    #[test]
    fn traced_explain_matches_and_records_phases() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let (plain_outcome, plain_report) = explain(
            l1,
            l2,
            small_trace(5_000, 33),
            &strategies,
            &ExplainConfig::default(),
        );
        let (outcome, report, trace) = explain_traced(
            l1,
            l2,
            small_trace(5_000, 33),
            &strategies,
            &ExplainConfig::default(),
        );
        assert_eq!(outcome.hierarchy, plain_outcome.hierarchy);
        assert_eq!(report.checks.len(), plain_report.checks.len());
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"explain"));
        assert!(names.contains(&"score"));
        assert!(names.contains(&"reconcile"));
        let root = trace
            .spans
            .iter()
            .find(|s| s.name == "explain")
            .expect("root span");
        assert_eq!(root.counter("refs"), Some(outcome.hierarchy.processor_refs));
    }

    #[test]
    fn all_identities_hold_across_associativities() {
        for assoc in [1u32, 2, 4, 8] {
            let (_, report) = run_explain(assoc, 8_000, 5);
            for c in report
                .checks
                .iter()
                .filter(|c| c.class == CheckClass::Exact)
            {
                assert!(
                    c.passed,
                    "a={assoc}: {} measured {} expected {}",
                    c.name, c.measured, c.expected
                );
            }
        }
    }

    #[test]
    fn mru_identity_is_tight() {
        let (outcome, report) = run_explain(4, 12_000, 9);
        let mru = outcome.strategy("mru").unwrap();
        assert!(
            (mru.probes.hit_mean() - report.mru_expected_hit_probes).abs() < 1e-9,
            "measured {} vs 1+Σ i·fᵢ {}",
            mru.probes.hit_mean(),
            report.mru_expected_hit_probes
        );
        let f_sum: f64 = report.mru_f.iter().sum();
        assert!((f_sum - 1.0).abs() < 1e-9, "fᵢ sum to {f_sum}");
    }

    #[test]
    fn partial_books_balance_exactly() {
        let (outcome, report) = run_explain(8, 8_000, 13);
        let (attr, result) = report
            .strategies
            .iter()
            .zip(&outcome.strategies)
            .find(|(a, _)| a.name.starts_with("partial["))
            .unwrap();
        assert_eq!(
            attr.read_in.probes,
            attr.read_in.step_one_probes + attr.read_in.candidates
        );
        assert_eq!(
            attr.read_in.false_matches,
            attr.read_in.candidates - result.probes.hits.count
        );
        assert_eq!(
            attr.read_in.probes,
            result.probes.hits.probes + result.probes.misses.probes
        );
    }

    #[test]
    fn event_totals_reconcile_with_probe_stats() {
        let (outcome, report) = run_explain(4, 8_000, 3);
        for (attr, result) in report.strategies.iter().zip(&outcome.strategies) {
            assert_eq!(
                attr.read_in.lookups,
                result.probes.hits.count + result.probes.misses.count,
                "{}",
                attr.name
            );
            assert_eq!(
                attr.read_in.probes,
                result.probes.hits.probes + result.probes.misses.probes,
                "{}",
                attr.name
            );
            assert_eq!(
                attr.write_back.probes, result.probes_no_opt.write_backs.probes,
                "{}",
                attr.name
            );
        }
    }

    #[test]
    fn sampled_events_are_deterministic_and_bounded() {
        let (_, a) = run_explain(4, 6_000, 17);
        let (_, b) = run_explain(4, 6_000, 17);
        assert_eq!(a.events, b.events);
        assert!(a.events.len() <= ExplainConfig::default().ring_capacity);
        assert!(a.sampling.seen > 0);
        // A sampled request keeps one event per strategy.
        for e in &a.events {
            assert_eq!(e.seq % a.sampling.every, 0);
        }
    }

    #[test]
    fn heatmap_covers_every_l2_request() {
        let (outcome, report) = run_explain(4, 8_000, 7);
        let total: u64 = report.hottest_sets.iter().map(|(_, a, _)| a).sum();
        let requests = outcome.hierarchy.read_ins + outcome.hierarchy.write_backs;
        assert!(total <= requests);
        assert!(report.touched_sets > 0);
        assert!(!report.hottest_sets.is_empty());
    }

    #[test]
    fn render_mentions_checks_and_distribution() {
        let (outcome, report) = run_explain(4, 6_000, 1);
        let text = report.render(&outcome);
        assert!(text.contains("probe attribution"));
        assert!(text.contains("1 + Σ (i+1)·fᵢ"));
        assert!(text.contains("checks:"));
        assert!(text.contains("mru/hit"));
    }

    #[test]
    fn jsonl_lines_are_typed_and_parseable() {
        let (outcome, report) = run_explain(4, 6_000, 1);
        let mut buf = Vec::new();
        report.write_jsonl(&outcome, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut kinds = std::collections::BTreeMap::new();
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            *kinds
                .entry(v["type"].as_str().unwrap().to_owned())
                .or_insert(0u32) += 1;
        }
        assert_eq!(kinds["summary"], 1);
        assert_eq!(kinds["mru_distribution"], 1);
        assert_eq!(kinds["strategy"], outcome.strategies.len() as u32);
        assert!(kinds["check"] > 0);
        assert!(kinds.contains_key("event"));
    }

    #[test]
    fn partial_name_parses() {
        assert_eq!(parse_partial("partial[t=16,s=2,xor]"), Some((16, 2)));
        assert_eq!(parse_partial("mru"), None);
        assert_eq!(parse_partial("partial[t=x,s=2,xor]"), None);
    }
}
