//! Trace-driven experiment harness reproducing every table and figure of
//! *Kessler, Jooss, Lebeck and Hill, "Inexpensive Implementations of
//! Set-Associativity" (ISCA 1989)*.
//!
//! The harness glues the three substrates together: synthetic
//! multiprogrammed traces (`seta-trace`) drive the two-level write-back
//! hierarchy (`seta-cache`), and every level-two request is priced by each
//! lookup strategy (`seta-core`) against the identical pre-access set
//! state. One pass therefore scores all strategies at once, exactly like
//! the paper's single trace-driven simulation.
//!
//! * [`runner`] — the simulation loop ([`runner::simulate`]).
//! * [`metered`] — the same loop with metrics, manifests, JSONL snapshot
//!   streaming and a progress heartbeat
//!   ([`metered::simulate_instrumented`]).
//! * [`explain`](mod@explain) — the same loop with probe-level event
//!   tracing: attributes every probe to its micro-events and cross-checks
//!   the measured distributions against the closed-form model
//!   ([`explain()`](explain::explain)).
//! * [`config`] — the paper's level-one/level-two configuration presets
//!   (Table 3).
//! * [`experiments`] — one module per table/figure, each returning
//!   structured, serializable results and rendering a paper-style text
//!   table.
//! * [`report`] — plain-text table and CSV formatting.
//! * [`report_html`] — HTML report sections for the explain and sweep
//!   artifacts (`seta_obs::report` holds the renderer itself).
//! * [`sweep_report`] — utilization analysis of a traced sweep
//!   ([`runner::simulate_many_traced`]): per-worker busy fractions,
//!   shard-size histograms, the critical-path shard and a load-balance
//!   score.
//! * [`advisor`] — the paper's §4 decision procedure as a measured
//!   recommendation.
//!
//! # Example
//!
//! Score the four schemes on a small multiprogrammed trace:
//!
//! ```
//! use seta_sim::config::paper_trace_scaled;
//! use seta_sim::runner::{simulate, standard_strategies};
//! use seta_cache::CacheConfig;
//! use seta_trace::gen::AtumLike;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let l1 = CacheConfig::direct_mapped(4 * 1024, 16)?;
//! let l2 = CacheConfig::new(64 * 1024, 32, 4)?;
//! let trace = AtumLike::new(paper_trace_scaled(100), 1);
//! let out = simulate(l1, l2, trace, &standard_strategies(4, 16));
//! assert!(out.hierarchy.read_ins > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod config;
pub mod experiments;
pub mod explain;
pub mod metered;
pub mod partition;
pub mod report;
pub mod report_html;
pub mod runner;
pub mod sweep_report;

pub use config::HierarchyPreset;
pub use explain::{explain, explain_traced, ExplainConfig, ExplainReport};
pub use metered::{simulate_instrumented, MeterConfig, MeteredRun};
pub use runner::{
    simulate, simulate_many_served, simulate_many_traced, simulate_traced, standard_strategies,
    RunOutcome, StrategyResult,
};
pub use sweep_report::{SweepReport, WorkerUtilization};
