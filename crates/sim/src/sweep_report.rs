//! Post-run utilization analysis of a traced sweep.
//!
//! [`simulate_many_traced`](crate::runner::simulate_many_traced) records
//! where a sharded sweep's wall time went; [`SweepReport::from_trace`]
//! condenses that trace into the questions that matter before scaling the
//! runner further: how busy was each worker, how skewed were the shards,
//! which shard was on the critical path, and how much time was lost to
//! queue handling and the sequential merge.

use serde::{Deserialize, Serialize};
use seta_obs::{Log2Histogram, PhaseSpan, RunManifest, SpanTrace};

/// One worker's share of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerUtilization {
    /// The worker's span track (1-based; track 0 is the coordinator).
    pub track: u32,
    /// Shards the worker ran.
    pub shards: u64,
    /// Microseconds spent simulating shards.
    pub busy_micros: u64,
    /// Microseconds spent in queue handling between shards.
    pub queue_wait_micros: u64,
    /// The worker's total lifetime in microseconds.
    pub wall_micros: u64,
    /// `busy_micros / wall_micros` (0 when the worker recorded no time).
    pub busy_fraction: f64,
}

/// Utilization summary of one traced sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The sweep root span's duration in microseconds.
    pub wall_micros: u64,
    /// Per-worker utilization, by track.
    pub workers: Vec<WorkerUtilization>,
    /// Distribution of shard sizes in references.
    pub shard_refs: Log2Histogram,
    /// Distribution of shard wall times in microseconds.
    pub shard_wall_micros: Log2Histogram,
    /// The longest-running shard — the critical path of the fan-out — as
    /// `(span name, microseconds)`.
    pub critical_shard: Option<(String, u64)>,
    /// Total queue-wait microseconds across workers.
    pub queue_wait_micros: u64,
    /// Microseconds the sequential merge took on the coordinator.
    pub merge_micros: u64,
    /// Mean worker busy time over max worker busy time: 1.0 is a
    /// perfectly balanced sweep, lower means stragglers (0 when the
    /// sweep recorded no busy time).
    pub load_balance: f64,
}

impl SweepReport {
    /// Derives the report from a sweep's span trace (as produced by
    /// `simulate_many_traced`; other traces yield an empty report).
    pub fn from_trace(trace: &SpanTrace) -> SweepReport {
        let wall_micros = trace.with_cat("sweep").map(|s| s.dur_us).max().unwrap_or(0);
        let merge_micros = trace.with_cat("merge").map(|s| s.dur_us).sum();

        let mut workers: Vec<WorkerUtilization> = trace
            .with_cat("worker")
            .map(|root| {
                let track = root.track;
                let on_track =
                    |cat: &'static str| trace.with_cat(cat).filter(move |s| s.track == track);
                let busy_micros: u64 = on_track("shard").map(|s| s.dur_us).sum();
                let queue_wait_micros: u64 = on_track("queue-wait").map(|s| s.dur_us).sum();
                WorkerUtilization {
                    track,
                    shards: on_track("shard").count() as u64,
                    busy_micros,
                    queue_wait_micros,
                    wall_micros: root.dur_us,
                    busy_fraction: if root.dur_us == 0 {
                        0.0
                    } else {
                        busy_micros as f64 / root.dur_us as f64
                    },
                }
            })
            .collect();
        workers.sort_by_key(|w| w.track);

        let mut shard_refs = Log2Histogram::new();
        let mut shard_wall_micros = Log2Histogram::new();
        let mut critical_shard: Option<(String, u64)> = None;
        for s in trace.with_cat("shard") {
            shard_refs.observe(s.counter("refs").unwrap_or(0));
            shard_wall_micros.observe(s.dur_us);
            let on_critical_path = match &critical_shard {
                None => true,
                Some((_, dur)) => s.dur_us > *dur,
            };
            if on_critical_path {
                critical_shard = Some((s.name.clone(), s.dur_us));
            }
        }

        let queue_wait_micros = workers.iter().map(|w| w.queue_wait_micros).sum();
        let max_busy = workers.iter().map(|w| w.busy_micros).max().unwrap_or(0);
        let load_balance = if max_busy == 0 || workers.is_empty() {
            0.0
        } else {
            let mean =
                workers.iter().map(|w| w.busy_micros).sum::<u64>() as f64 / workers.len() as f64;
            mean / max_busy as f64
        };

        SweepReport {
            wall_micros,
            workers,
            shard_refs,
            shard_wall_micros,
            critical_shard,
            queue_wait_micros,
            merge_micros,
            load_balance,
        }
    }

    /// Renders the report as a human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sweep: {} µs wall, merge {} µs, queue-wait {} µs, load balance {:.3}",
            self.wall_micros, self.merge_micros, self.queue_wait_micros, self.load_balance
        );
        let _ = writeln!(
            s,
            "  {:<10} {:>7} {:>12} {:>10} {:>10} {:>6}",
            "worker", "shards", "busy µs", "wait µs", "wall µs", "busy%"
        );
        for w in &self.workers {
            let _ = writeln!(
                s,
                "  {:<10} {:>7} {:>12} {:>10} {:>10} {:>5.1}%",
                format!("worker-{}", w.track),
                w.shards,
                w.busy_micros,
                w.queue_wait_micros,
                w.wall_micros,
                100.0 * w.busy_fraction
            );
        }
        if let Some((name, micros)) = &self.critical_shard {
            let _ = writeln!(s, "  critical shard: {name} ({micros} µs)");
        }
        let _ = writeln!(s, "  shard sizes (refs, log2 buckets):");
        for (i, count) in self.shard_refs.buckets.iter().enumerate() {
            if *count > 0 {
                let _ = writeln!(
                    s,
                    "    <= {:>10}: {count}",
                    Log2Histogram::bucket_upper_bound(i)
                );
            }
        }
        let _ = writeln!(s, "  shard wall (µs, log2 buckets):");
        for (i, count) in self.shard_wall_micros.buckets.iter().enumerate() {
            if *count > 0 {
                let _ = writeln!(
                    s,
                    "    <= {:>10}: {count}",
                    Log2Histogram::bucket_upper_bound(i)
                );
            }
        }
        s
    }

    /// Embeds the report into a [`RunManifest`]: summary numbers as
    /// labels, per-worker busy time as phases.
    pub fn annotate(&self, manifest: &mut RunManifest) {
        manifest.label("sweep_wall_micros", self.wall_micros);
        manifest.label("sweep_workers", self.workers.len());
        manifest.label("sweep_load_balance", format!("{:.4}", self.load_balance));
        manifest.label("sweep_queue_wait_micros", self.queue_wait_micros);
        manifest.label("sweep_merge_micros", self.merge_micros);
        if let Some((name, micros)) = &self.critical_shard {
            manifest.label("sweep_critical_shard", format!("{name} ({micros} µs)"));
        }
        for w in &self.workers {
            manifest.phases.push(PhaseSpan {
                name: format!("worker-{} busy", w.track),
                wall_micros: w.busy_micros,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate_many_traced_with_threads, RunSpec};
    use seta_cache::CacheConfig;
    use seta_obs::{SpanBuffer, SpanClock, SpanTrace};
    use seta_trace::gen::AtumLikeConfig;

    /// A deterministic synthetic sweep trace: two workers, three shards.
    fn synthetic_trace() -> SpanTrace {
        let clock = SpanClock::new();
        let mut trace = SpanTrace::new();
        let mut main = SpanBuffer::new(0, clock.clone());
        let sweep = main.open_at("sweep", "sweep", 0);
        let merge = main.open_at("merge", "merge", 90);
        main.close_at(merge, 100);
        main.close_at(sweep, 110);
        trace.name_track(0, "main");
        trace.absorb(main);

        let mut w1 = SpanBuffer::new(1, clock.clone());
        let root = w1.open_at("worker-1", "worker", 0);
        let a = w1.open_at("spec0 seg0..1", "shard", 0);
        w1.counter(a, "refs", 1000);
        w1.close_at(a, 60);
        let wait = w1.open_at("queue-wait", "queue-wait", 60);
        w1.close_at(wait, 80);
        w1.close_at(root, 80);
        trace.name_track(1, "worker-1");
        trace.absorb(w1);

        let mut w2 = SpanBuffer::new(2, clock);
        let root = w2.open_at("worker-2", "worker", 0);
        for (name, start, end, refs) in [
            ("spec0 seg1..2", 0u64, 20u64, 500u64),
            ("spec0 seg2..3", 20, 40, 500),
        ] {
            let s = w2.open_at(name, "shard", start);
            w2.counter(s, "refs", refs);
            w2.close_at(s, end);
        }
        let wait = w2.open_at("queue-wait", "queue-wait", 40);
        w2.close_at(wait, 80);
        w2.close_at(root, 80);
        trace.name_track(2, "worker-2");
        trace.absorb(w2);
        trace
    }

    #[test]
    fn report_derives_utilization_from_spans() {
        let r = SweepReport::from_trace(&synthetic_trace());
        assert_eq!(r.wall_micros, 110);
        assert_eq!(r.merge_micros, 10);
        assert_eq!(r.workers.len(), 2);
        let w1 = &r.workers[0];
        assert_eq!((w1.track, w1.shards, w1.busy_micros), (1, 1, 60));
        assert_eq!(w1.queue_wait_micros, 20);
        assert!((w1.busy_fraction - 0.75).abs() < 1e-12);
        let w2 = &r.workers[1];
        assert_eq!(
            (w2.shards, w2.busy_micros, w2.queue_wait_micros),
            (2, 40, 40)
        );
        assert_eq!(r.queue_wait_micros, 60);
        // Mean busy (50) over max busy (60).
        assert!((r.load_balance - 50.0 / 60.0).abs() < 1e-12);
        assert_eq!(r.critical_shard, Some(("spec0 seg0..1".to_owned(), 60)));
        assert_eq!(r.shard_refs.count, 3);
        assert_eq!(r.shard_refs.sum, 2000);
        assert_eq!(r.shard_wall_micros.count, 3);
    }

    #[test]
    fn report_from_empty_trace_is_all_zeros() {
        let r = SweepReport::from_trace(&SpanTrace::new());
        assert_eq!(r.wall_micros, 0);
        assert!(r.workers.is_empty());
        assert_eq!(r.load_balance, 0.0);
        assert_eq!(r.critical_shard, None);
        assert!(r.render().contains("sweep: 0 µs"));
    }

    #[test]
    fn render_and_annotate_carry_the_numbers() {
        let r = SweepReport::from_trace(&synthetic_trace());
        let text = r.render();
        assert!(text.contains("worker-1"), "{text}");
        assert!(text.contains("critical shard: spec0 seg0..1"), "{text}");
        assert!(text.contains("load balance 0.833"), "{text}");
        let mut manifest = RunManifest::new("0.0.0");
        r.annotate(&mut manifest);
        assert_eq!(manifest.label_value("sweep_workers"), Some("2"));
        assert_eq!(manifest.label_value("sweep_wall_micros"), Some("110"));
        assert!(manifest
            .phases
            .iter()
            .any(|p| p.name == "worker-2 busy" && p.wall_micros == 40));
    }

    #[test]
    fn report_from_a_real_traced_sweep_accounts_for_every_shard() {
        let spec = RunSpec {
            l1: CacheConfig::direct_mapped(4 * 1024, 16).unwrap(),
            l2: CacheConfig::new(32 * 1024, 32, 4).unwrap(),
            trace: {
                let mut c = AtumLikeConfig::paper_like();
                c.segments = 5;
                c.refs_per_segment = 2_000;
                c
            },
            seed: 3,
            tag_bits: 16,
        };
        let (outcomes, trace) = simulate_many_traced_with_threads(&[spec], 2);
        let r = SweepReport::from_trace(&trace);
        assert_eq!(r.workers.len(), 2);
        let shards: u64 = r.workers.iter().map(|w| w.shards).sum();
        assert_eq!(shards, 5, "every cold segment became a shard");
        assert_eq!(r.shard_refs.count, 5);
        assert_eq!(r.shard_refs.sum, outcomes[0].hierarchy.processor_refs);
        assert!(r.load_balance > 0.0 && r.load_balance <= 1.0);
        assert!(r.wall_micros > 0);
        for w in &r.workers {
            assert!(w.busy_fraction >= 0.0 && w.busy_fraction <= 1.0);
        }
    }
}
