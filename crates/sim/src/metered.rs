//! The instrumented simulation loop.
//!
//! [`simulate_instrumented`] produces the exact same [`RunOutcome`] as
//! [`simulate`](crate::runner::simulate) — the scorer and the hierarchy
//! are shared code — while additionally maintaining a
//! [`MetricsRegistry`]: per-strategy probe counters and log2 probe-count
//! histograms, the MRU-distance histogram, hierarchy counters and ratio
//! gauges, and per-segment wall-time spans in a [`RunManifest`]. Periodic
//! registry snapshots stream to a JSON-lines writer, and an optional
//! [`Progress`] heartbeat reports refs/sec and ETA on stderr.
//!
//! The un-instrumented path never pays for any of this: `simulate` drives
//! the hierarchy with the unit [`MetricsSink`],
//! which monomorphizes to nothing.

use crate::runner::{assemble_outcome, RunOutcome, Scorer};
use seta_cache::{
    CacheConfig, L2Observer, L2RequestKind, L2RequestView, MetricsSink, TwoLevel, TwoLevelStats,
};
use seta_core::lookup::LookupStrategy;
use seta_obs::export::{final_snapshot_line, snapshot_line};
use seta_obs::timeseries::{WindowRecord, WindowSeries, DEFAULT_WINDOW_REFS};
use seta_obs::{
    labeled, CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, Progress, RunManifest,
    ServeHandle, ServeHeartbeat, SpanBuffer, SpanClock, SpanTrace,
};
use seta_trace::TraceEvent;
use std::io::{self, Write};
use std::time::Instant;

/// Knobs for an instrumented run.
#[derive(Debug, Clone)]
pub struct MeterConfig {
    /// References between streamed registry snapshots; 0 disables the
    /// periodic lines (the final snapshot is always written).
    pub snapshot_every: u64,
    /// Print a refs/sec + ETA heartbeat to stderr.
    pub progress: bool,
    /// Minimum seconds between heartbeat lines (the CLI's
    /// `--progress-interval`); `None` keeps [`Progress`]'s default.
    pub progress_interval_secs: Option<u64>,
    /// Expected processor references, for the heartbeat's percentage and
    /// ETA columns.
    pub expected_refs: Option<u64>,
    /// References per time-series window (see
    /// [`WindowSeries`]); 0 disables the windowed series.
    pub window_refs: u64,
    /// Publish the run live to a monitoring server (see
    /// [`seta_obs::serve`]): registry snapshots and heartbeats at every
    /// snapshot boundary, window rows as they close, the manifest, and a
    /// final `finish_run` so the last scrape equals the written artifact.
    /// `None` (the default) leaves the hot path exactly as it was — the
    /// handle is only consulted at snapshot and window boundaries.
    pub serve: Option<ServeHandle>,
}

impl Default for MeterConfig {
    fn default() -> Self {
        MeterConfig {
            snapshot_every: 100_000,
            progress: false,
            progress_interval_secs: None,
            expected_refs: None,
            window_refs: DEFAULT_WINDOW_REFS,
            serve: None,
        }
    }
}

/// Everything an instrumented run produces.
#[derive(Debug)]
pub struct MeteredRun {
    /// The simulation results, identical to the un-instrumented path.
    pub outcome: RunOutcome,
    /// Config labels, trace identity and per-segment wall times.
    pub manifest: RunManifest,
    /// Final state of every counter, gauge and histogram.
    pub registry: MetricsRegistry,
    /// JSONL lines written (periodic + final).
    pub snapshots: u64,
    /// Fixed-window time series (empty when
    /// [`window_refs`](MeterConfig::window_refs) is 0). Column sums over
    /// the rows equal the aggregate outcome exactly.
    pub windows: Vec<WindowRecord>,
    /// Span trace of the run: one span per trace segment, mirroring the
    /// manifest's phases, under a `simulate` root.
    pub spans: SpanTrace,
}

/// Registry handles for one strategy's series.
struct StrategyHandles {
    hits: CounterHandle,
    misses: CounterHandle,
    write_backs: CounterHandle,
    hit_probes: CounterHandle,
    miss_probes: CounterHandle,
    write_back_probes: CounterHandle,
    probe_hist: HistogramHandle,
}

/// Hierarchy-wide handles.
struct GlobalHandles {
    refs: CounterHandle,
    l1_hits: CounterHandle,
    flushes: CounterHandle,
    read_ins: CounterHandle,
    read_in_hits: CounterHandle,
    write_backs: CounterHandle,
    write_back_hits: CounterHandle,
    l1_miss_ratio: GaugeHandle,
    local_miss_ratio: GaugeHandle,
    global_miss_ratio: GaugeHandle,
    hint_accuracy: GaugeHandle,
    refs_per_second: GaugeHandle,
    wall_seconds: GaugeHandle,
    mru_distance: HistogramHandle,
    segment_wall: HistogramHandle,
}

/// The instrumented observer: scores strategies exactly like the plain
/// path (it wraps the same [`Scorer`]) and additionally feeds per-request
/// histograms.
struct Meter<'a> {
    scorer: Scorer<'a>,
    registry: MetricsRegistry,
    global: GlobalHandles,
    per_strategy: Vec<StrategyHandles>,
    /// Per-strategy read-in probe totals before the current request, for
    /// per-request deltas into the probe-count histograms.
    prev_probes: Vec<u64>,
    /// Windowed time series (None when disabled).
    windows: Option<WindowSeries>,
    /// Per-strategy all-books probe totals (hits + misses + write-backs)
    /// before the current request, for per-request deltas into the
    /// current window.
    prev_window_probes: Vec<u64>,
}

impl<'a> Meter<'a> {
    fn new(strategies: &'a [Box<dyn LookupStrategy>], assoc: u32, window_refs: u64) -> Self {
        let mut registry = MetricsRegistry::new();
        let global = GlobalHandles {
            refs: registry.counter("refs_total"),
            l1_hits: registry.counter("l1_hits_total"),
            flushes: registry.counter("flushes_total"),
            read_ins: registry.counter("l2_read_ins_total"),
            read_in_hits: registry.counter("l2_read_in_hits_total"),
            write_backs: registry.counter("l2_write_backs_total"),
            write_back_hits: registry.counter("l2_write_back_hits_total"),
            l1_miss_ratio: registry.gauge("l1_miss_ratio"),
            local_miss_ratio: registry.gauge("l2_local_miss_ratio"),
            global_miss_ratio: registry.gauge("global_miss_ratio"),
            hint_accuracy: registry.gauge("hint_accuracy"),
            refs_per_second: registry.gauge("refs_per_second"),
            wall_seconds: registry.gauge("wall_seconds"),
            mru_distance: registry.histogram("mru_distance"),
            segment_wall: registry.histogram("segment_wall_micros"),
        };
        let per_strategy = strategies
            .iter()
            .map(|s| {
                let name = s.name();
                StrategyHandles {
                    hits: registry.counter(&labeled("probe_hits_total", "strategy", &name)),
                    misses: registry.counter(&labeled("probe_misses_total", "strategy", &name)),
                    write_backs: registry.counter(&labeled(
                        "probe_write_backs_total",
                        "strategy",
                        &name,
                    )),
                    hit_probes: registry.counter(&labeled("hit_probes_total", "strategy", &name)),
                    miss_probes: registry.counter(&labeled("miss_probes_total", "strategy", &name)),
                    write_back_probes: registry.counter(&labeled(
                        "write_back_probes_total",
                        "strategy",
                        &name,
                    )),
                    probe_hist: registry.histogram(&labeled("read_in_probes", "strategy", &name)),
                }
            })
            .collect();
        let names: Vec<String> = strategies.iter().map(|s| s.name()).collect();
        Meter {
            scorer: Scorer::new(strategies, assoc),
            registry,
            global,
            per_strategy,
            prev_probes: vec![0; strategies.len()],
            windows: (window_refs > 0).then(|| WindowSeries::new(&names, window_refs)),
            prev_window_probes: vec![0; strategies.len()],
        }
    }

    /// Total probes strategy `i` has charged on the optimized books.
    fn probe_total(&self, i: usize) -> u64 {
        let (probes, _) = &self.scorer.results[i];
        probes.hits.probes + probes.misses.probes + probes.write_backs.probes
    }

    /// Records one finished segment's wall time.
    fn observe_segment(&mut self, wall_micros: u64) {
        self.registry.observe(self.global.segment_wall, wall_micros);
    }

    /// Overwrites counters and gauges with the authoritative totals from
    /// the hierarchy and the scorer. All sources are monotone, so
    /// repeated syncs yield monotone counter series.
    fn sync(&mut self, stats: &TwoLevelStats, l1_hits: u64, elapsed_secs: f64) {
        let g = &self.global;
        self.registry.set_counter(g.refs, stats.processor_refs);
        self.registry.set_counter(g.l1_hits, l1_hits);
        self.registry.set_counter(g.flushes, stats.flushes);
        self.registry.set_counter(g.read_ins, stats.read_ins);
        self.registry
            .set_counter(g.read_in_hits, stats.read_in_hits);
        self.registry.set_counter(g.write_backs, stats.write_backs);
        self.registry
            .set_counter(g.write_back_hits, stats.write_back_hits);
        self.registry
            .set_gauge(g.l1_miss_ratio, stats.l1_miss_ratio());
        self.registry
            .set_gauge(g.local_miss_ratio, stats.local_miss_ratio());
        self.registry
            .set_gauge(g.global_miss_ratio, stats.global_miss_ratio());
        self.registry
            .set_gauge(g.hint_accuracy, stats.hint_accuracy());
        self.registry.set_gauge(g.wall_seconds, elapsed_secs);
        let rate = if elapsed_secs > 0.0 {
            stats.processor_refs as f64 / elapsed_secs
        } else {
            0.0
        };
        self.registry.set_gauge(g.refs_per_second, rate);
        for (h, (probes, _)) in self.per_strategy.iter().zip(&self.scorer.results) {
            self.registry.set_counter(h.hits, probes.hits.count);
            self.registry.set_counter(h.misses, probes.misses.count);
            self.registry
                .set_counter(h.write_backs, probes.write_backs.count);
            self.registry.set_counter(h.hit_probes, probes.hits.probes);
            self.registry
                .set_counter(h.miss_probes, probes.misses.probes);
            self.registry
                .set_counter(h.write_back_probes, probes.write_backs.probes);
        }
    }
}

impl L2Observer for Meter<'_> {
    fn on_l2_request(&mut self, req: &L2RequestView<'_>) {
        if req.kind == L2RequestKind::ReadIn {
            if let Some(d) = req.mru_distance.filter(|_| req.hit) {
                self.registry.observe(self.global.mru_distance, d as u64);
            }
            for (prev, (probes, _)) in self.prev_probes.iter_mut().zip(&self.scorer.results) {
                *prev = probes.hits.probes + probes.misses.probes;
            }
        }
        if self.windows.is_some() {
            for i in 0..self.prev_window_probes.len() {
                self.prev_window_probes[i] = self.probe_total(i);
            }
        }
        self.scorer.on_l2_request(req);
        if req.kind == L2RequestKind::ReadIn {
            for (i, h) in self.per_strategy.iter().enumerate() {
                let (probes, _) = &self.scorer.results[i];
                let delta = probes.hits.probes + probes.misses.probes - self.prev_probes[i];
                self.registry.observe(h.probe_hist, delta);
            }
        }
        if self.windows.is_some() {
            for i in 0..self.prev_window_probes.len() {
                let delta = self.probe_total(i) - self.prev_window_probes[i];
                if delta > 0 {
                    if let Some(w) = self.windows.as_mut() {
                        w.add_probes(i, delta);
                    }
                }
            }
        }
        if let Some(windows) = self.windows.as_mut() {
            match req.kind {
                L2RequestKind::ReadIn => {
                    windows.on_read_in(req.hit, req.hit && req.mru_distance == Some(0));
                }
                L2RequestKind::WriteBack => windows.on_write_back(),
            }
        }
    }
}

/// The heartbeat the sequential instrumented loop publishes to a live
/// server: one worker, rate derived from the wall clock.
fn live_heartbeat(refs: u64, wall_seconds: f64, window_miss_ratio: Option<f64>) -> ServeHeartbeat {
    ServeHeartbeat {
        refs,
        wall_seconds,
        refs_per_second: if wall_seconds > 0.0 {
            refs as f64 / wall_seconds
        } else {
            0.0
        },
        window_miss_ratio,
        active_workers: Some(1),
    }
}

/// Counts L1 outcomes through the hierarchy's [`MetricsSink`] hook.
#[derive(Default)]
struct RefSink {
    l1_hits: u64,
}

impl MetricsSink for RefSink {
    fn on_ref(&mut self, l1_hit: bool) {
        if l1_hit {
            self.l1_hits += 1;
        }
    }
}

/// [`simulate`](crate::runner::simulate) with full instrumentation.
///
/// Drives `events` through a fresh two-level hierarchy exactly like the
/// plain path, and additionally:
///
/// * maintains a [`MetricsRegistry`] whose final per-strategy probe
///   counters equal the [`RunOutcome`]'s `ProbeStats` totals exactly;
/// * records each trace segment (delimited by flush events) as a timed
///   phase in the [`RunManifest`];
/// * streams a registry snapshot to `metrics_out` as one JSON line every
///   [`snapshot_every`](MeterConfig::snapshot_every) references, plus a
///   final line embedding the manifest;
/// * optionally heartbeats progress to stderr.
///
/// `source` and `seed` identify the workload in the manifest (use a file
/// path for file-borne traces or a `synthetic:` description for generated
/// ones).
///
/// # Errors
///
/// Returns any I/O error from writing `metrics_out`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_instrumented<I, W>(
    l1: CacheConfig,
    l2: CacheConfig,
    events: I,
    strategies: &[Box<dyn LookupStrategy>],
    source: &str,
    seed: u64,
    cfg: &MeterConfig,
    mut metrics_out: Option<&mut W>,
) -> io::Result<MeteredRun>
where
    I: IntoIterator<Item = TraceEvent>,
    W: Write,
{
    let mut hierarchy = TwoLevel::new(l1, l2).expect("L1 blocks must fit in L2 blocks");
    if let Some(spec) = crate::runner::partial_lane_spec(strategies, l2.associativity()) {
        hierarchy.enable_partial_lanes(spec);
    }
    let mut meter = Meter::new(strategies, l2.associativity(), cfg.window_refs);
    let mut sink = RefSink::default();
    let mut span_buf = SpanBuffer::new(0, SpanClock::new());
    let run_span = span_buf.open("simulate", "run");
    let mut seg_span = span_buf.open("segment-0", "segment");

    let mut manifest = RunManifest::new(env!("CARGO_PKG_VERSION"));
    manifest.label("l1", l1.label());
    manifest.label("l2", l2.label());
    manifest.label("assoc", l2.associativity());
    manifest.label("seed", seed);
    let names: Vec<String> = strategies.iter().map(|s| s.name()).collect();
    manifest.label("strategies", names.join(","));

    let mut progress = cfg.progress.then(|| {
        let mut p = match cfg.progress_interval_secs {
            Some(secs) => Progress::with_interval_secs("simulate", cfg.expected_refs, secs),
            None => Progress::new("simulate", cfg.expected_refs),
        };
        // The instrumented loop is the sequential path; heartbeat lines
        // carry the worker count so sweep and single-run output read alike.
        p.set_active_workers(1);
        p
    });
    let started = Instant::now();
    let mut segment = 0u64;
    let mut segment_guard = manifest.begin_phase("segment-0");
    let mut events_seen = 0u64;
    let mut seq = 0u64;
    let mut snapshots = 0u64;
    let mut next_snapshot = if cfg.snapshot_every == 0 {
        u64::MAX
    } else {
        cfg.snapshot_every
    };
    // Window rows already handed to the live server; rows the series
    // closes later are published as the loop passes each close site.
    let mut published_windows = 0usize;
    if let Some(h) = cfg.serve.as_ref() {
        h.publish_manifest(&manifest);
        h.publish_registry(&meter.registry);
    }

    for event in events {
        events_seen += 1;
        let is_flush = matches!(event, TraceEvent::Flush);
        hierarchy.process_metered(&event, &mut meter, &mut sink);
        if is_flush {
            manifest.end_phase(segment_guard);
            let span = manifest
                .phases
                .last()
                .expect("phase just ended")
                .wall_micros;
            meter.observe_segment(span);
            if let Some(w) = meter.windows.as_mut() {
                w.on_segment_boundary();
                if let Some(p) = progress.as_mut() {
                    p.set_window_miss_ratio(w.last_window_miss_ratio());
                }
            }
            if let (Some(h), Some(w)) = (cfg.serve.as_ref(), meter.windows.as_ref()) {
                for row in &w.closed()[published_windows..] {
                    h.publish_window(row);
                }
                published_windows = w.closed().len();
            }
            span_buf.close(seg_span);
            segment += 1;
            segment_guard = manifest.begin_phase(&format!("segment-{segment}"));
            seg_span = span_buf.open(format!("segment-{segment}"), "segment");
            continue;
        }
        if let Some(w) = meter.windows.as_mut() {
            let closed = w.closed().len();
            w.on_ref();
            if w.closed().len() > closed {
                if let Some(p) = progress.as_mut() {
                    p.set_window_miss_ratio(w.last_window_miss_ratio());
                }
            }
        }
        if let (Some(h), Some(w)) = (cfg.serve.as_ref(), meter.windows.as_ref()) {
            for row in &w.closed()[published_windows..] {
                h.publish_window(row);
            }
            published_windows = w.closed().len();
        }
        if let Some(p) = progress.as_mut() {
            p.tick(1);
        }
        let refs = hierarchy.stats().processor_refs;
        if refs >= next_snapshot {
            next_snapshot = refs + cfg.snapshot_every;
            if metrics_out.is_some() || cfg.serve.is_some() {
                meter.sync(
                    hierarchy.stats(),
                    sink.l1_hits,
                    started.elapsed().as_secs_f64(),
                );
            }
            if let Some(out) = metrics_out.as_deref_mut() {
                writeln!(out, "{}", snapshot_line(&meter.registry, seq, refs))?;
                seq += 1;
                snapshots += 1;
            }
            if let Some(h) = cfg.serve.as_ref() {
                h.publish_registry(&meter.registry);
                let miss = meter
                    .windows
                    .as_ref()
                    .and_then(|w| w.last_window_miss_ratio());
                h.publish_heartbeat(&live_heartbeat(refs, started.elapsed().as_secs_f64(), miss));
            }
        }
    }

    manifest.end_phase(segment_guard);
    let span = manifest
        .phases
        .last()
        .expect("phase just ended")
        .wall_micros;
    meter.observe_segment(span);
    span_buf.close(seg_span);
    span_buf.counter(run_span, "refs", hierarchy.stats().processor_refs);
    span_buf.close(run_span);
    let mut spans = SpanTrace::new();
    spans.name_track(0, "main");
    spans.absorb(span_buf);
    manifest.set_trace(source, events_seen, seed);
    if let Some(p) = progress.as_mut() {
        p.finish();
    }

    meter.sync(
        hierarchy.stats(),
        sink.l1_hits,
        started.elapsed().as_secs_f64(),
    );
    let Meter {
        scorer,
        registry,
        windows,
        ..
    } = meter;
    let windows = windows.map(WindowSeries::finish).unwrap_or_default();
    let refs = hierarchy.stats().processor_refs;
    if let Some(out) = metrics_out {
        writeln!(
            out,
            "{}",
            final_snapshot_line(&registry, seq, refs, &manifest)
        )?;
        snapshots += 1;
        out.flush()?;
    }
    if let Some(h) = cfg.serve.as_ref() {
        // End-of-run ordering matters for the acceptance check "the final
        // scrape equals the written artifact": authoritative registry
        // first, then every window row not yet streamed (including the
        // trailing partial window `finish` appends), then the manifest
        // with its trace identity, then the closing heartbeat.
        h.publish_registry(&registry);
        for row in &windows[published_windows..] {
            h.publish_window(row);
        }
        h.publish_manifest(&manifest);
        let miss = windows.last().and_then(WindowRecord::miss_ratio);
        h.publish_heartbeat(&live_heartbeat(refs, started.elapsed().as_secs_f64(), miss));
        h.finish_run();
    }
    let outcome = assemble_outcome(&hierarchy, scorer, strategies);
    Ok(MeteredRun {
        outcome,
        manifest,
        registry,
        snapshots,
        windows,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate, standard_strategies};
    use seta_trace::gen::{AtumLike, AtumLikeConfig};

    fn small_trace(refs: u64, seed: u64) -> AtumLike {
        let mut cfg = AtumLikeConfig::paper_like();
        cfg.segments = 2;
        cfg.refs_per_segment = refs;
        AtumLike::new(cfg, seed)
    }

    fn geometries() -> (CacheConfig, CacheConfig) {
        (
            CacheConfig::direct_mapped(4 * 1024, 16).unwrap(),
            CacheConfig::new(32 * 1024, 32, 4).unwrap(),
        )
    }

    #[test]
    fn instrumented_outcome_matches_plain_simulate() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let plain = simulate(l1, l2, small_trace(8_000, 11), &strategies);
        let metered = simulate_instrumented(
            l1,
            l2,
            small_trace(8_000, 11),
            &strategies,
            "synthetic:test",
            11,
            &MeterConfig::default(),
            None::<&mut Vec<u8>>,
        )
        .unwrap();
        assert_eq!(metered.outcome.hierarchy, plain.hierarchy);
        for (a, b) in metered.outcome.strategies.iter().zip(&plain.strategies) {
            assert_eq!(a.probes, b.probes, "{}", a.name);
            assert_eq!(a.probes_no_opt, b.probes_no_opt, "{}", a.name);
        }
        assert_eq!(metered.outcome.mru_hist, plain.mru_hist);
    }

    #[test]
    fn final_counters_equal_outcome_totals() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let run = simulate_instrumented(
            l1,
            l2,
            small_trace(8_000, 5),
            &strategies,
            "synthetic:test",
            5,
            &MeterConfig::default(),
            None::<&mut Vec<u8>>,
        )
        .unwrap();
        for s in &run.outcome.strategies {
            let get = |series: &str| {
                run.registry
                    .counter_by_name(&seta_obs::labeled(series, "strategy", &s.name))
                    .unwrap_or_else(|| panic!("{series} for {}", s.name))
            };
            assert_eq!(get("probe_hits_total"), s.probes.hits.count);
            assert_eq!(get("probe_misses_total"), s.probes.misses.count);
            assert_eq!(get("probe_write_backs_total"), s.probes.write_backs.count);
            assert_eq!(get("hit_probes_total"), s.probes.hits.probes);
            assert_eq!(get("miss_probes_total"), s.probes.misses.probes);
            assert_eq!(get("write_back_probes_total"), s.probes.write_backs.probes);
        }
        let stats = &run.outcome.hierarchy;
        assert_eq!(
            run.registry.counter_by_name("refs_total"),
            Some(stats.processor_refs)
        );
        assert_eq!(
            run.registry.counter_by_name("l2_read_ins_total"),
            Some(stats.read_ins)
        );
        assert_eq!(
            run.registry.counter_by_name("l1_hits_total"),
            Some(stats.processor_refs - stats.read_ins)
        );
    }

    #[test]
    fn probe_histograms_count_read_ins_and_match_sums() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let run = simulate_instrumented(
            l1,
            l2,
            small_trace(6_000, 3),
            &strategies,
            "synthetic:test",
            3,
            &MeterConfig::default(),
            None::<&mut Vec<u8>>,
        )
        .unwrap();
        for s in &run.outcome.strategies {
            let h = run
                .registry
                .histogram_by_name(&seta_obs::labeled("read_in_probes", "strategy", &s.name))
                .unwrap();
            assert_eq!(
                h.count,
                s.probes.hits.count + s.probes.misses.count,
                "{}",
                s.name
            );
            assert_eq!(
                h.sum,
                s.probes.hits.probes + s.probes.misses.probes,
                "{}",
                s.name
            );
        }
        let mru = run.registry.histogram_by_name("mru_distance").unwrap();
        assert_eq!(mru.count, run.outcome.hierarchy.read_in_hits);
    }

    #[test]
    fn segments_become_manifest_phases() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let run = simulate_instrumented(
            l1,
            l2,
            small_trace(2_000, 9),
            &strategies,
            "synthetic:test",
            9,
            &MeterConfig::default(),
            None::<&mut Vec<u8>>,
        )
        .unwrap();
        // A 2-segment trace has segment-0, segment-1 and (if the stream
        // ends with a flush) a trailing empty span.
        let names: Vec<&str> = run
            .manifest
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(names.contains(&"segment-0"), "{names:?}");
        assert!(names.contains(&"segment-1"), "{names:?}");
        let trace = run.manifest.trace.as_ref().unwrap();
        assert_eq!(trace.seed, 9);
        assert!(trace.events >= 4_000, "{}", trace.events);
        assert_eq!(run.manifest.label_value("assoc"), Some("4"));
        let seg_hist = run
            .registry
            .histogram_by_name("segment_wall_micros")
            .unwrap();
        assert_eq!(seg_hist.count as usize, run.manifest.phases.len());
    }

    #[test]
    fn window_rows_sum_exactly_to_aggregate_stats() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let run = simulate_instrumented(
            l1,
            l2,
            small_trace(9_000, 23),
            &strategies,
            "synthetic:test",
            23,
            &MeterConfig {
                window_refs: 1_000,
                ..MeterConfig::default()
            },
            None::<&mut Vec<u8>>,
        )
        .unwrap();
        assert!(run.windows.len() >= 10, "got {} windows", run.windows.len());
        let stats = &run.outcome.hierarchy;
        let sum = |f: fn(&seta_obs::timeseries::WindowRecord) -> u64| -> u64 {
            run.windows.iter().map(f).sum()
        };
        assert_eq!(sum(|w| w.refs_end - w.refs_start), stats.processor_refs);
        assert_eq!(sum(|w| w.read_ins), stats.read_ins);
        assert_eq!(sum(|w| w.read_in_hits), stats.read_in_hits);
        assert_eq!(sum(|w| w.write_backs), stats.write_backs);
        assert_eq!(sum(|w| w.mru_pos0_hits), run.outcome.mru_hist.count(0));
        for (i, s) in run.outcome.strategies.iter().enumerate() {
            let probes: u64 = run.windows.iter().map(|w| w.strategies[i].probes).sum();
            let expected =
                s.probes.hits.probes + s.probes.misses.probes + s.probes.write_backs.probes;
            assert_eq!(probes, expected, "{}", s.name);
            assert_eq!(run.windows[0].strategies[i].strategy, s.name);
        }
        // Windows never span a segment boundary and abut exactly.
        for pair in run.windows.windows(2) {
            assert_eq!(pair[0].refs_end, pair[1].refs_start);
            assert!(pair[0].segment <= pair[1].segment);
        }
        let segments: std::collections::BTreeSet<u64> =
            run.windows.iter().map(|w| w.segment).collect();
        assert_eq!(segments.len(), 2, "one group of windows per trace segment");
    }

    #[test]
    fn disabling_windows_yields_no_rows() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let run = simulate_instrumented(
            l1,
            l2,
            small_trace(2_000, 1),
            &strategies,
            "synthetic:test",
            1,
            &MeterConfig {
                window_refs: 0,
                ..MeterConfig::default()
            },
            None::<&mut Vec<u8>>,
        )
        .unwrap();
        assert!(run.windows.is_empty());
        // Spans still record the segment phases.
        assert_eq!(run.spans.with_cat("run").count(), 1);
        assert!(run.spans.with_cat("segment").count() >= 2);
    }

    #[test]
    fn segment_spans_mirror_manifest_phases() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let run = simulate_instrumented(
            l1,
            l2,
            small_trace(3_000, 4),
            &strategies,
            "synthetic:test",
            4,
            &MeterConfig::default(),
            None::<&mut Vec<u8>>,
        )
        .unwrap();
        let span_names: Vec<&str> = run
            .spans
            .with_cat("segment")
            .map(|s| s.name.as_str())
            .collect();
        let phase_names: Vec<&str> = run
            .manifest
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(span_names, phase_names);
        let root = run.spans.with_cat("run").next().unwrap();
        assert_eq!(
            root.counter("refs"),
            Some(run.outcome.hierarchy.processor_refs)
        );
    }

    #[test]
    fn jsonl_stream_is_well_formed_and_monotone() {
        let (l1, l2) = geometries();
        let strategies = standard_strategies(4, 16);
        let mut buf: Vec<u8> = Vec::new();
        let run = simulate_instrumented(
            l1,
            l2,
            small_trace(5_000, 13),
            &strategies,
            "synthetic:test",
            13,
            &MeterConfig {
                snapshot_every: 1_000,
                ..MeterConfig::default()
            },
            Some(&mut buf),
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, run.snapshots);
        assert!(lines.len() >= 2, "periodic + final lines");
        let mut prev_refs = 0u64;
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["seq"].as_u64(), Some(i as u64));
            let refs = v["refs"].as_u64().unwrap();
            assert!(refs >= prev_refs, "refs monotone");
            prev_refs = refs;
            let is_last = i + 1 == lines.len();
            assert_eq!(
                v.get("final").and_then(|f| f.as_bool()),
                is_last.then_some(true)
            );
        }
    }
}
