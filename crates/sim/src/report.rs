//! Plain-text table rendering for paper-style output.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-justified (labels).
    Left,
    /// Right-justified (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Example
///
/// ```
/// use seta_sim::report::TextTable;
///
/// let mut t = TextTable::new(vec!["Method".into(), "Probes".into()]);
/// t.row(vec!["naive".into(), "2.50".into()]);
/// let s = t.render();
/// assert!(s.contains("naive"));
/// assert!(s.starts_with("Method"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with the first column left-aligned and the rest
    /// right-aligned (the common shape of the paper's tables).
    pub fn render(&self) -> String {
        let aligns: Vec<Align> = (0..self.headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        self.render_aligned(&aligns)
    }

    /// Renders with explicit per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if `aligns` length differs from the column count.
    pub fn render_aligned(&self, aligns: &[Align]) -> String {
        assert_eq!(aligns.len(), self.headers.len(), "alignment width mismatch");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, (cell, &w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{cell:<w$}");
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>w$}");
                    }
                }
            }
            // Trim trailing spaces from left-aligned final columns.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

impl TextTable {
    /// Renders the same data as RFC-4180-style CSV (for re-plotting the
    /// figures): header row, then data rows; cells containing commas,
    /// quotes or newlines are quoted.
    pub fn render_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float the way the paper's tables do (two decimals).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio with four decimals (miss ratios in Table 4).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Method".into(), "Hits".into()]);
        t.row(vec!["naive".into(), "2.5".into()]);
        t.row(vec!["mru".into(), "10.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Numbers right-aligned: both end at the same column.
        assert!(lines[2].ends_with("2.5"));
        assert!(lines[3].ends_with("10.25"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn rule_spans_the_table() {
        let mut t = TextTable::new(vec!["A".into(), "B".into()]);
        t.row(vec!["xx".into(), "yy".into()]);
        let s = t.render();
        let rule = s.lines().nth(1).unwrap();
        assert!(rule.chars().all(|c| c == '-'));
        assert_eq!(rule.len(), s.lines().next().unwrap().len().max(2 + 2 + 2));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["A".into()]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        TextTable::new(vec![]);
    }

    #[test]
    fn csv_renders_header_and_rows() {
        let mut t = TextTable::new(vec!["Method".into(), "Probes".into()]);
        t.row(vec!["naive".into(), "2.50".into()]);
        assert_eq!(t.render_csv(), "Method,Probes\nnaive,2.50\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(vec!["A".into()]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""), "{csv}");
        assert!(csv.contains("\"say \"\"hi\"\"\""), "{csv}");
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(2.094), "2.09");
        assert_eq!(f4(0.1181), "0.1181");
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["A".into()]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
