//! End-to-end test of the live monitoring server against a real
//! instrumented simulation: bind an ephemeral port, hold the run at a
//! deterministic mid-point with a gated event iterator, scrape `/metrics`
//! while the run is provably in flight, stream `/events` to completion,
//! and check the final scrape against the run's own outcome.

use seta_cache::CacheConfig;
use seta_sim::metered::{simulate_instrumented, MeterConfig};
use seta_sim::runner::standard_strategies;
use seta_trace::gen::{AtumLike, AtumLikeConfig};
use seta_trace::TraceEvent;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

/// Yields `inner`'s events, but parks at event index `at` until the test
/// thread has finished its mid-run scrapes — the simulation is then
/// guaranteed to be neither finished nor at a publish boundary of the
/// test's choosing.
struct Gated<I> {
    inner: I,
    at: u64,
    seen: u64,
    reached: mpsc::Sender<()>,
    resume: mpsc::Receiver<()>,
}

impl<I: Iterator<Item = TraceEvent>> Iterator for Gated<I> {
    type Item = TraceEvent;
    fn next(&mut self) -> Option<TraceEvent> {
        if self.seen == self.at {
            let _ = self.reached.send(());
            self.resume
                .recv_timeout(Duration::from_secs(30))
                .expect("test thread releases the gate");
        }
        self.seen += 1;
        self.inner.next()
    }
}

/// One blocking HTTP/1.1 GET, reading until the server closes.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Asserts `text` is well-formed Prometheus exposition: comments are
/// `# TYPE`/`# HELP`, every sample line is `name{labels} value` with a
/// parseable value, and returns the samples.
fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            assert!(
                comment.starts_with("TYPE ") || comment.starts_with("HELP "),
                "unexpected comment: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line}");
        });
        let value: f64 = match value {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().unwrap_or_else(|e| {
                panic!("bad sample value {v:?} in {line:?}: {e}");
            }),
        };
        assert!(!name.is_empty(), "empty metric name: {line}");
        samples.push((name.to_owned(), value));
    }
    samples
}

fn sample(samples: &[(String, f64)], name: &str) -> f64 {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .1
}

#[test]
fn live_server_tracks_a_real_instrumented_run_end_to_end() {
    let server = seta_obs::Server::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();

    let mut trace_cfg = AtumLikeConfig::paper_like();
    trace_cfg.segments = 3;
    trace_cfg.refs_per_segment = 3_000;
    let (reached_tx, reached_rx) = mpsc::channel();
    let (resume_tx, resume_rx) = mpsc::channel();
    let events = Gated {
        inner: AtumLike::new(trace_cfg, 7),
        at: 5_000,
        seen: 0,
        reached: reached_tx,
        resume: resume_rx,
    };

    // Stream /events from before the run so no window row can be missed.
    let sse = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect SSE");
        write!(stream, "GET /events HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
        let mut raw = String::new();
        // The server ends the stream after the run's closing "end" event.
        stream.read_to_string(&mut raw).expect("read SSE to EOF");
        raw
    });

    let run = std::thread::spawn(move || {
        let l1 = CacheConfig::direct_mapped(4 * 1024, 16).unwrap();
        let l2 = CacheConfig::new(32 * 1024, 32, 4).unwrap();
        let strategies = standard_strategies(4, 16);
        let cfg = MeterConfig {
            snapshot_every: 1_000,
            window_refs: 500,
            serve: Some(handle),
            ..MeterConfig::default()
        };
        simulate_instrumented(
            l1,
            l2,
            events,
            &strategies,
            "synthetic:serve-e2e",
            7,
            &cfg,
            None::<&mut Vec<u8>>,
        )
        .expect("instrumented run")
    });

    // --- Mid-run: the simulation is parked at event 5000. ---
    reached_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("run reaches the gate");
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let mid = parse_prometheus(&body);
    let mid_refs = sample(&mid, "refs_total");
    assert!(
        mid_refs > 0.0 && mid_refs < 9_000.0,
        "mid-run refs_total should be partial, got {mid_refs}"
    );
    let (status, health) = http_get(addr, "/health");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"running\""), "{health}");
    let (status, manifest) = http_get(addr, "/manifest.json");
    assert_eq!(status, 200);
    let m: serde_json::Value = serde_json::from_str(&manifest).expect("manifest parses");
    assert!(m.get("labels").is_some(), "{manifest}");

    resume_tx.send(()).expect("release the gate");
    let run = run.join().expect("run thread");

    // --- After the run: the final scrape equals the run's own books. ---
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let fin = parse_prometheus(&body);
    let stats = &run.outcome.hierarchy;
    assert_eq!(sample(&fin, "refs_total") as u64, stats.processor_refs);
    assert_eq!(sample(&fin, "l2_read_ins_total") as u64, stats.read_ins);
    assert_eq!(
        sample(&fin, "l2_write_backs_total") as u64,
        stats.write_backs
    );
    for s in &run.outcome.strategies {
        let name = seta_obs::labeled("hit_probes_total", "strategy", &s.name);
        assert_eq!(sample(&fin, &name) as u64, s.probes.hits.probes, "{name}");
    }
    let (_, health) = http_get(addr, "/health");
    assert!(health.contains("\"status\":\"done\""), "{health}");
    let (status, page) = http_get(addr, "/");
    assert_eq!(status, 200);
    seta_obs::report::validate_live_page(&page).expect("live dashboard validates");

    // --- The SSE stream saw every window, in order, then the end event. ---
    let raw = sse.join().expect("SSE thread");
    let mut kinds: Vec<String> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut window_refs_sum = 0u64;
    let mut current = None;
    for line in raw.lines() {
        if let Some(k) = line.strip_prefix("event: ") {
            current = Some(k.to_owned());
            kinds.push(k.to_owned());
        } else if let Some(id) = line.strip_prefix("id: ") {
            ids.push(id.parse().expect("numeric SSE id"));
        } else if let Some(data) = line.strip_prefix("data: ") {
            if current.as_deref() == Some("window") {
                let w: serde_json::Value = serde_json::from_str(data).expect("window row parses");
                window_refs_sum +=
                    w["refs_end"].as_u64().unwrap() - w["refs_start"].as_u64().unwrap();
            }
        }
    }
    let windows = kinds.iter().filter(|k| *k == "window").count();
    assert!(windows >= 3, "want >=3 window events, got {windows}");
    assert_eq!(kinds.last().map(String::as_str), Some("end"));
    assert!(
        ids.windows(2).all(|p| p[0] < p[1]),
        "SSE ids must be strictly increasing: {ids:?}"
    );
    assert!(
        !raw.contains("\n: dropped "),
        "no events may be dropped at this scale"
    );
    assert_eq!(
        window_refs_sum, stats.processor_refs,
        "streamed windows must sum exactly to the aggregate stats"
    );
    assert_eq!(windows, run.windows.len(), "every window row was streamed");

    // --- Shutdown drains cleanly: it joins the accept loop and every
    // worker, so returning at all is the assertion. A later connection
    // attempt must fail rather than hang on a half-dead listener.
    server.shutdown();
    if let Ok(mut stream) = TcpStream::connect(addr) {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        let _ = write!(stream, "GET /health HTTP/1.1\r\nHost: test\r\n\r\n");
        let mut buf = String::new();
        let got = stream.read_to_string(&mut buf);
        assert!(
            got.is_err() || buf.is_empty(),
            "a post-shutdown connection must not be serviced: {buf}"
        );
    }
}
