//! Property tests pinning the branchless/SWAR fast paths to the scalar
//! reference implementation.
//!
//! Every built-in strategy keeps its original scalar `search` as the body
//! of `lookup_observed`; the un-instrumented `lookup` runs the rewritten
//! fast path. These tests drive both over the same inputs — ways 1..=32,
//! tag widths 1..=64, all four `TransformKind`s, full and truncated MRU
//! lists — and require bit-identical `(hit_way, probes)` results, plus the
//! same again for `PartialCompare::lookup_packed` against incrementally
//! maintainable lane words.

use proptest::prelude::*;
use seta_core::lookup::{
    Banked, LookupStrategy, Mru, Naive, PartialCompare, ScanOrder, Traditional, TransformKind,
};
use seta_core::packed::PackedLanes;
use seta_core::{SetView, MAX_ASSOC};

/// The scalar reference: `lookup_observed` with a no-op observer runs the
/// retained pre-rewrite search loop in every built-in strategy.
fn scalar(strategy: &dyn LookupStrategy, view: &SetView, tag: u64) -> seta_core::Lookup {
    strategy.lookup_observed(view, tag, &mut ())
}

fn transform(idx: u64) -> TransformKind {
    [
        TransformKind::None,
        TransformKind::XorFold,
        TransformKind::Improved,
        TransformKind::Swap,
    ][(idx % 4) as usize]
}

/// Builds a `ways`-way snapshot from oversized raw material, with a
/// pseudo-random MRU permutation, plus a probe tag that points at a stored
/// (possibly invalid, possibly duplicated) tag about half the time.
fn build_case(
    ways: usize,
    tags: &[u64],
    valid: &[bool],
    seed: u64,
    pick: usize,
    raw_tag: u64,
) -> (SetView, u64) {
    let tags = &tags[..ways];
    let valid = &valid[..ways];
    let mut order: Vec<u8> = (0..ways as u8).collect();
    let mut s = seed;
    for i in (1..ways).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (s >> 33) as usize % (i + 1));
    }
    let tag = if pick == 0 {
        raw_tag
    } else {
        tags[(pick - 1) % ways]
    };
    (SetView::from_parts(tags, valid, &order), tag)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn whole_set_strategies_match_scalar(
        ways in 1usize..=MAX_ASSOC,
        tags in proptest::collection::vec(any::<u64>(), MAX_ASSOC),
        valid in proptest::collection::vec(any::<bool>(), MAX_ASSOC),
        seed in any::<u64>(),
        pick in 0usize..=MAX_ASSOC,
        raw_tag in any::<u64>(),
        mru_len in 0usize..=40,
        banks in 1u32..=9,
        mru_banks in any::<bool>(),
    ) {
        let (view, tag) = build_case(ways, &tags, &valid, seed, pick, raw_tag);
        let mru = match mru_len {
            0 => Mru::full(),
            l => Mru::truncated(l),
        };
        let banked = Banked::new(
            banks,
            if mru_banks { ScanOrder::Mru } else { ScanOrder::Frame },
        );
        let strategies: [&dyn LookupStrategy; 4] = [&Traditional, &Naive, &mru, &banked];
        for s in strategies {
            prop_assert_eq!(
                s.lookup(&view, tag),
                scalar(s, &view, tag),
                "{} fast path diverged from scalar reference (ways={})",
                s.name(),
                ways
            );
        }
    }

    #[test]
    fn partial_compare_swar_matches_scalar(
        ways in 1usize..=MAX_ASSOC,
        tags in proptest::collection::vec(any::<u64>(), MAX_ASSOC),
        valid in proptest::collection::vec(any::<bool>(), MAX_ASSOC),
        seed in any::<u64>(),
        pick in 0usize..=MAX_ASSOC,
        raw_tag in any::<u64>(),
        transform_idx in any::<u64>(),
        subsets_sel in any::<u64>(),
        width_sel in any::<u64>(),
    ) {
        let (view, tag) = build_case(ways, &tags, &valid, seed, pick, raw_tag);
        let divisors: Vec<u32> =
            (1..=ways as u32).filter(|d| ways as u32 % d == 0).collect();
        let subsets = divisors[(subsets_sel % divisors.len() as u64) as usize];
        // Any width in per_subset..=64 keeps k ≥ 1; the low end exercises
        // k = 1, and subsets == ways exercises k all the way up to 64.
        let per_subset = ways as u64 / subsets as u64;
        let tag_bits = (per_subset + width_sel % (64 - per_subset + 1)) as u32;
        let kind = transform(transform_idx);
        let p = PartialCompare::new(tag_bits, subsets, kind);

        let fast = p.lookup(&view, tag);
        prop_assert_eq!(
            fast,
            scalar(&p, &view, tag),
            "SWAR path diverged (t={}, s={}, {:?}, ways={})",
            tag_bits, subsets, kind, ways
        );

        // The cache-maintained packed path must agree too. rebuild_set is
        // proven equivalent to incremental on_fill in the packed module's
        // unit tests.
        if let Some(spec) = p.lane_spec(ways) {
            let mut lanes = PackedLanes::new(spec, 1);
            lanes.rebuild_set(0, view.tags());
            prop_assert_eq!(
                p.lookup_packed(&view, &lanes.view(0), tag),
                fast,
                "packed-lane path diverged (t={}, s={}, {:?}, ways={})",
                tag_bits, subsets, kind, ways
            );
        }
    }
}
