//! Tag transformations over GF(2).
//!
//! The partial-compare scheme (§2.2) works best when every k-bit slice of a
//! stored tag is uniformly distributed. High-order virtual-address tag bits
//! are anything but uniform, so the paper stores *transformed* tags:
//! bijective GF(2)-linear maps that fold the entropy of the low-order bits
//! into the rest of the tag. Incoming tags go through the same map, so
//! equality is preserved; write-backs invert the map to recover the
//! original tag.
//!
//! Three named transforms from the paper, all on `t`-bit tags split into
//! k-bit *fields* `p₀` (least significant) … `p_{m−1}`:
//!
//! * [`XorFold`] — `p₀` passes; every other field is XORed with `p₀`
//!   ("the simple transformation of Section 2"). Self-inverse.
//! * [`Improved`] — `p₀` passes; `p₁ ^= p₀`; every later field is XORed
//!   with both `p₀` and `p₁` (the "new transformation" of Figure 6).
//!   Not self-inverse, but its inverse costs the same gates.
//! * [`Identity`] — no transformation (Figure 6's "None" line).
//!
//! [`Gf2Matrix`] provides the general machinery of the paper's footnote 8:
//! arbitrary linear transformations with Gaussian-elimination inversion,
//! used here to *prove* the named transforms bijective in tests and
//! available for experimenting with new maps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bijective map on `t`-bit tags.
///
/// Implementations must satisfy `inverse(forward(x)) == x` for every
/// `x < 2^t`; bits at and above `t` are ignored on input and zero on
/// output.
pub trait TagTransform: fmt::Debug {
    /// The transform applied before a tag is stored (and to incoming tags
    /// before comparison).
    fn forward(&self, tag: u64) -> u64;

    /// Recovers the original tag (needed to write back a block's address).
    fn inverse(&self, tag: u64) -> u64;

    /// Tag width in bits.
    fn tag_bits(&self) -> u32;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The mask selecting the low `bits` bits of a tag (`bits ≤ 64`).
pub fn tag_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

use tag_mask as mask;

fn check_widths(tag_bits: u32, field_bits: u32) {
    assert!(
        (1..=64).contains(&tag_bits),
        "tag width {tag_bits} out of 1..=64"
    );
    assert!(
        field_bits >= 1 && field_bits <= tag_bits,
        "field width {field_bits} out of 1..={tag_bits}"
    );
}

/// The identity transform — Figure 6's "None" configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Identity {
    tag_bits: u32,
}

impl Identity {
    /// Creates the identity on `t`-bit tags.
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits` is 0 or exceeds 64.
    pub fn new(tag_bits: u32) -> Self {
        check_widths(tag_bits, 1);
        Identity { tag_bits }
    }
}

impl TagTransform for Identity {
    fn forward(&self, tag: u64) -> u64 {
        tag & mask(self.tag_bits)
    }

    fn inverse(&self, tag: u64) -> u64 {
        tag & mask(self.tag_bits)
    }

    fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// The paper's simple transform: XOR the low-order field into every other
/// field. Self-inverse (applying it twice yields the original tag).
///
/// # Example
///
/// ```
/// use seta_core::transform::{TagTransform, XorFold};
///
/// let t = XorFold::new(16, 4);
/// let tag = 0xABC5;
/// let stored = t.forward(tag);
/// assert_eq!(t.forward(stored), tag, "self-inverse");
/// assert_eq!(t.inverse(stored), tag);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorFold {
    tag_bits: u32,
    field_bits: u32,
}

impl XorFold {
    /// Creates the transform on `t`-bit tags with `k`-bit fields.
    ///
    /// # Panics
    ///
    /// Panics if widths are out of range (`1 ≤ k ≤ t ≤ 64`).
    pub fn new(tag_bits: u32, field_bits: u32) -> Self {
        check_widths(tag_bits, field_bits);
        XorFold {
            tag_bits,
            field_bits,
        }
    }

    fn apply(&self, tag: u64) -> u64 {
        let tag = tag & mask(self.tag_bits);
        let p0 = tag & mask(self.field_bits);
        // Broadcast p0 into every higher field and XOR. The replication
        // pattern repeats p0 at every field offset above 0.
        let mut pattern = 0u64;
        let mut shift = self.field_bits;
        while shift < self.tag_bits {
            pattern |= p0 << shift;
            shift += self.field_bits;
        }
        (tag ^ pattern) & mask(self.tag_bits)
    }
}

impl TagTransform for XorFold {
    fn forward(&self, tag: u64) -> u64 {
        self.apply(tag)
    }

    fn inverse(&self, tag: u64) -> u64 {
        // p0 is untouched by `apply`, so applying again cancels the XORs.
        self.apply(tag)
    }

    fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    fn name(&self) -> &'static str {
        "xor"
    }
}

/// The paper's improved transform (Figure 6's "New" line): `p₀` passes,
/// `p₁` is XORed with `p₀`, and every later field is XORed with both `p₀`
/// and `p₁` (fields of the *original* tag — a lower-triangular GF(2) map).
///
/// # Example
///
/// ```
/// use seta_core::transform::{Improved, TagTransform};
///
/// let t = Improved::new(16, 4);
/// let tag = 0x1234;
/// assert_eq!(t.inverse(t.forward(tag)), tag);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Improved {
    tag_bits: u32,
    field_bits: u32,
}

impl Improved {
    /// Creates the transform on `t`-bit tags with `k`-bit fields.
    ///
    /// # Panics
    ///
    /// Panics if widths are out of range (`1 ≤ k ≤ t ≤ 64`).
    pub fn new(tag_bits: u32, field_bits: u32) -> Self {
        check_widths(tag_bits, field_bits);
        Improved {
            tag_bits,
            field_bits,
        }
    }
}

impl TagTransform for Improved {
    fn forward(&self, tag: u64) -> u64 {
        let tag = tag & mask(self.tag_bits);
        let k = self.field_bits;
        let p0 = tag & mask(k);
        // When k == t there is no second field (and `tag >> 64` would be UB
        // for k == 64); the transform degenerates to the identity.
        let p1 = if k < self.tag_bits {
            (tag >> k) & mask(k)
        } else {
            0
        };
        let mut out = p0;
        if k < self.tag_bits {
            out |= (p1 ^ p0) << k;
        }
        let mut shift = 2 * k;
        while shift < self.tag_bits {
            let field = (tag >> shift) & mask(k);
            out |= (field ^ p0 ^ p1) << shift;
            shift += k;
        }
        out & mask(self.tag_bits)
    }

    fn inverse(&self, tag: u64) -> u64 {
        let tag = tag & mask(self.tag_bits);
        let k = self.field_bits;
        let p0 = tag & mask(k);
        let o1 = if k < self.tag_bits {
            (tag >> k) & mask(k)
        } else {
            0
        };
        let p1 = o1 ^ p0;
        let mut out = p0;
        if k < self.tag_bits {
            out |= p1 << k;
        }
        let mut shift = 2 * k;
        while shift < self.tag_bits {
            let field = (tag >> shift) & mask(k);
            out |= (field ^ p0 ^ p1) << shift;
            shift += k;
        }
        out & mask(self.tag_bits)
    }

    fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    fn name(&self) -> &'static str {
        "improved"
    }
}

/// A dense `t×t` matrix over GF(2), stored one row per `u64` (row `i`, bit
/// `j` = entry `(i,j)`). Applying the matrix to a tag computes `M·x` with
/// XOR as addition — the general linear transformation of the paper's
/// footnote 8.
///
/// # Example
///
/// ```
/// use seta_core::transform::Gf2Matrix;
///
/// let m = Gf2Matrix::identity(8);
/// assert_eq!(m.apply(0xA5), 0xA5);
/// assert!(m.is_invertible());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gf2Matrix {
    bits: u32,
    rows: Vec<u64>,
}

impl Gf2Matrix {
    /// The identity matrix on `bits`-bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 64.
    pub fn identity(bits: u32) -> Self {
        check_widths(bits, 1);
        Gf2Matrix {
            bits,
            rows: (0..bits).map(|i| 1u64 << i).collect(),
        }
    }

    /// Builds a matrix from rows (row `i`, bit `j` = entry `(i,j)`).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is 0, exceeds 64, or any row uses bits at or
    /// above `rows.len()`.
    pub fn from_rows(rows: Vec<u64>) -> Self {
        let bits = rows.len() as u32;
        check_widths(bits, 1);
        for (i, &r) in rows.iter().enumerate() {
            assert!(
                r & !mask(bits) == 0,
                "row {i} uses bits beyond the matrix width"
            );
        }
        Gf2Matrix { bits, rows }
    }

    /// The matrix of a [`TagTransform`] (by probing basis vectors). The
    /// transform must be linear for the result to be meaningful.
    pub fn of_transform<T: TagTransform + ?Sized>(t: &T) -> Self {
        let bits = t.tag_bits();
        // Column j of the matrix is forward(e_j); assemble rows from columns.
        let mut rows = vec![0u64; bits as usize];
        for j in 0..bits {
            let col = t.forward(1u64 << j);
            for (i, row) in rows.iter_mut().enumerate() {
                if col & (1u64 << i) != 0 {
                    *row |= 1u64 << j;
                }
            }
        }
        Gf2Matrix { bits, rows }
    }

    /// Vector width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Computes `M·x` over GF(2).
    pub fn apply(&self, x: u64) -> u64 {
        let x = x & mask(self.bits);
        let mut out = 0u64;
        for (i, &row) in self.rows.iter().enumerate() {
            if (row & x).count_ones() % 2 == 1 {
                out |= 1u64 << i;
            }
        }
        out
    }

    /// Whether the matrix is invertible (full rank), decided by Gaussian
    /// elimination.
    pub fn is_invertible(&self) -> bool {
        self.inverse().is_some()
    }

    /// The inverse matrix, if one exists.
    pub fn inverse(&self) -> Option<Gf2Matrix> {
        let n = self.bits as usize;
        let mut a = self.rows.clone();
        let mut inv = Gf2Matrix::identity(self.bits).rows;
        for col in 0..n {
            // Find a pivot row at or below `col` with a 1 in this column.
            let pivot = (col..n).find(|&r| a[r] & (1u64 << col) != 0)?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            for r in 0..n {
                if r != col && a[r] & (1u64 << col) != 0 {
                    a[r] ^= a[col];
                    inv[r] ^= inv[col];
                }
            }
        }
        Some(Gf2Matrix {
            bits: self.bits,
            rows: inv,
        })
    }

    /// Whether the matrix is lower-triangular with ones on the diagonal —
    /// the sufficient condition for invertibility the paper's footnote 8
    /// invokes.
    pub fn is_unit_lower_triangular(&self) -> bool {
        self.rows.iter().enumerate().all(|(i, &row)| {
            let diag = row & (1u64 << i) != 0;
            let above = row & !mask(i as u32 + 1) == 0;
            diag && above
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn transforms() -> Vec<Box<dyn TagTransform>> {
        vec![
            Box::new(Identity::new(16)),
            Box::new(XorFold::new(16, 4)),
            Box::new(Improved::new(16, 4)),
            Box::new(XorFold::new(32, 4)),
            Box::new(Improved::new(32, 4)),
            Box::new(XorFold::new(16, 5)), // t not a multiple of k
            Box::new(Improved::new(16, 5)),
            Box::new(XorFold::new(16, 16)), // single field: degenerate
            Box::new(Improved::new(16, 16)),
        ]
    }

    #[test]
    fn forward_then_inverse_is_identity_exhaustive_small() {
        for t in [
            Box::new(XorFold::new(8, 2)) as Box<dyn TagTransform>,
            Box::new(Improved::new(8, 2)),
            Box::new(Identity::new(8)),
        ] {
            for tag in 0u64..256 {
                assert_eq!(t.inverse(t.forward(tag)), tag, "{}", t.name());
            }
        }
    }

    #[test]
    fn forward_is_a_bijection_exhaustive_small() {
        for t in [
            Box::new(XorFold::new(10, 3)) as Box<dyn TagTransform>,
            Box::new(Improved::new(10, 3)),
        ] {
            let mut seen = vec![false; 1024];
            for tag in 0u64..1024 {
                let out = t.forward(tag) as usize;
                assert!(!seen[out], "{} maps two tags to {out:#x}", t.name());
                seen[out] = true;
            }
        }
    }

    #[test]
    fn xor_fold_is_self_inverse() {
        let t = XorFold::new(16, 4);
        for tag in [0u64, 1, 0xFFFF, 0xABC5, 0x8000] {
            assert_eq!(t.forward(t.forward(tag)), tag);
        }
    }

    #[test]
    fn improved_is_not_self_inverse() {
        let t = Improved::new(16, 4);
        // forward∘forward XORs p0 into every field at index ≥ 2, so any tag
        // with a nonzero low field and at least three fields is moved.
        let tag = 0x0111u64;
        assert_ne!(t.forward(t.forward(tag)), tag);
    }

    #[test]
    fn xor_fold_known_value() {
        // t=16, k=4: p0 = 0x5 is XORed into the three higher nibbles.
        let t = XorFold::new(16, 4);
        assert_eq!(t.forward(0xABC5), 0xABC5 ^ 0x5550);
    }

    #[test]
    fn improved_known_value() {
        // t=16, k=4, tag 0xDCBA: p0=A, p1=B → o1 = B^A = 1,
        // o2 = C^A^B = C^1... (fields of the ORIGINAL tag)
        let t = Improved::new(16, 4);
        let p0 = 0xA;
        let p1 = 0xB;
        let expect = p0 | ((p1 ^ p0) << 4) | ((0xC ^ p0 ^ p1) << 8) | ((0xD ^ p0 ^ p1) << 12);
        assert_eq!(t.forward(0xDCBA), expect);
    }

    #[test]
    fn named_transforms_are_linear_and_unit_lower_triangular() {
        for t in transforms() {
            let m = Gf2Matrix::of_transform(t.as_ref());
            // Linearity: M·x == forward(x) for random probes.
            for x in [0u64, 1, 0x5555, 0xFFFF, 0x1234] {
                assert_eq!(m.apply(x), t.forward(x), "{} not linear", t.name());
            }
            assert!(
                m.is_unit_lower_triangular(),
                "{} at t={} is not unit lower triangular",
                t.name(),
                t.tag_bits()
            );
            assert!(m.is_invertible());
        }
    }

    #[test]
    fn gf2_identity_applies_as_identity() {
        let m = Gf2Matrix::identity(16);
        for x in [0u64, 1, 0xFFFF, 0xA5A5] {
            assert_eq!(m.apply(x), x);
        }
    }

    #[test]
    fn gf2_inverse_round_trips() {
        let m = Gf2Matrix::of_transform(&Improved::new(12, 3));
        let inv = m.inverse().expect("invertible");
        for x in 0u64..(1 << 12) {
            assert_eq!(inv.apply(m.apply(x)), x);
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // Two equal rows → rank deficient.
        let m = Gf2Matrix::from_rows(vec![0b01, 0b01]);
        assert!(!m.is_invertible());
        assert!(m.inverse().is_none());
    }

    #[test]
    #[should_panic(expected = "beyond the matrix width")]
    fn from_rows_rejects_wide_rows() {
        Gf2Matrix::from_rows(vec![0b100, 0b010]);
    }

    #[test]
    #[should_panic(expected = "tag width")]
    fn zero_width_rejected() {
        Identity::new(0);
    }

    #[test]
    #[should_panic(expected = "field width")]
    fn field_wider_than_tag_rejected() {
        XorFold::new(8, 9);
    }

    #[test]
    fn transform_outputs_fit_tag_width() {
        for t in transforms() {
            let m = mask(t.tag_bits());
            for x in [u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
                assert_eq!(t.forward(x) & !m, 0, "{}", t.name());
                assert_eq!(t.inverse(x) & !m, 0, "{}", t.name());
            }
        }
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(tag in any::<u64>(), k in 1u32..9, extra in 0u32..49) {
            let t_bits = k + extra.max(1); // ensure t >= k
            for tr in [
                Box::new(XorFold::new(t_bits, k)) as Box<dyn TagTransform>,
                Box::new(Improved::new(t_bits, k)),
                Box::new(Identity::new(t_bits)),
            ] {
                let masked = tag & mask(t_bits);
                prop_assert_eq!(tr.inverse(tr.forward(tag)), masked);
            }
        }

        #[test]
        fn equality_preserved(a in any::<u64>(), b in any::<u64>()) {
            let tr = Improved::new(20, 4);
            let (ma, mb) = (a & mask(20), b & mask(20));
            prop_assert_eq!(tr.forward(a) == tr.forward(b), ma == mb);
        }

        /// Random unit-lower-triangular matrices (footnote 8's
        /// construction) are always invertible, and applying the matrix
        /// then its inverse is the identity.
        #[test]
        fn random_unit_lower_triangular_invertible(
            below in proptest::collection::vec(any::<u64>(), 12),
            probes in proptest::collection::vec(any::<u64>(), 8),
        ) {
            let bits = below.len() as u32;
            let rows: Vec<u64> = below
                .iter()
                .enumerate()
                .map(|(i, &r)| (r & mask(i as u32)) | (1u64 << i))
                .collect();
            let m = Gf2Matrix::from_rows(rows);
            prop_assert!(m.is_unit_lower_triangular());
            let inv = m.inverse().expect("unit lower triangular is invertible");
            for p in probes {
                let x = p & mask(bits);
                prop_assert_eq!(inv.apply(m.apply(x)), x);
                prop_assert_eq!(m.apply(inv.apply(x)), x);
            }
        }

        /// Matrix application is linear: M(x ^ y) == M(x) ^ M(y).
        #[test]
        fn matrix_application_is_linear(x in any::<u64>(), y in any::<u64>()) {
            let m = Gf2Matrix::of_transform(&Improved::new(16, 4));
            let (x, y) = (x & mask(16), y & mask(16));
            prop_assert_eq!(m.apply(x ^ y), m.apply(x) ^ m.apply(y));
        }
    }
}
