//! The implementation cost model of Table 2.
//!
//! The paper backs its probe-count analysis with trial board designs of the
//! tag memory and comparison logic for a cache holding one million 24-bit
//! tags, in both dynamic and static RAM. This module encodes those designs
//! as data — memory package parameters, access/cycle-time formulas linear
//! in the probe count, and package counts — so Table 2 regenerates from
//! the model and other technologies can be explored.
//!
//! Serial schemes exploit *page-mode* DRAM: probes after the first to the
//! same row cost far less than the first (35 ns vs 100 ns in the paper's
//! parts), which is what makes multi-probe lookups affordable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// RAM technology of a trial design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RamTechnology {
    /// Dynamic RAM (with page mode for the serial schemes).
    Dram,
    /// Static RAM.
    Sram,
}

impl fmt::Display for RamTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RamTechnology::Dram => f.write_str("dynamic RAM"),
            RamTechnology::Sram => f.write_str("static RAM"),
        }
    }
}

/// Which lookup implementation a trial design realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LookupImpl {
    /// A direct-mapped cache (the cost floor).
    DirectMapped,
    /// The traditional wide parallel implementation.
    Traditional,
    /// The serial MRU implementation.
    Mru,
    /// The partial-compare implementation.
    Partial,
}

impl fmt::Display for LookupImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LookupImpl::DirectMapped => "direct-mapped",
            LookupImpl::Traditional => "traditional",
            LookupImpl::Mru => "MRU",
            LookupImpl::Partial => "partial",
        };
        f.write_str(name)
    }
}

/// The memory packages a design is built from (top half of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryPackage {
    /// Chip organization, e.g. `"1Mx8"`.
    pub organization: String,
    /// Basic (first) access time, ns.
    pub basic_access_ns: f64,
    /// Page-mode access time for subsequent probes to the same row, ns
    /// (`None` when the part has no useful page mode).
    pub page_mode_access_ns: Option<f64>,
    /// Basic cycle time, ns.
    pub basic_cycle_ns: f64,
    /// Page-mode cycle time, ns.
    pub page_mode_cycle_ns: Option<f64>,
}

/// A time linear in a probe-count variable: `base + slope·v` ns.
///
/// For the MRU design `v` is `x`, the expected probes after reading the
/// MRU list (1..a for hits, a for misses); for the partial design `v` is
/// `y`, the step-two probes. A constant time has `slope = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingFormula {
    /// Constant term, ns.
    pub base_ns: f64,
    /// Cost per probe-variable unit, ns.
    pub slope_ns: f64,
}

impl TimingFormula {
    /// A constant time.
    pub fn constant(base_ns: f64) -> Self {
        TimingFormula {
            base_ns,
            slope_ns: 0.0,
        }
    }

    /// A probe-dependent time.
    pub fn linear(base_ns: f64, slope_ns: f64) -> Self {
        TimingFormula { base_ns, slope_ns }
    }

    /// Evaluates the formula at `v` probes.
    pub fn at(&self, v: f64) -> f64 {
        self.base_ns + self.slope_ns * v
    }

    /// Renders the formula as the paper prints it, e.g. `150+50x`.
    pub fn render(&self, var: &str) -> String {
        if self.slope_ns == 0.0 {
            format!("{}", self.base_ns)
        } else {
            format!("{}+{}{var}", self.base_ns, self.slope_ns)
        }
    }
}

/// One trial design: a row pair of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialDesign {
    /// Which implementation.
    pub implementation: LookupImpl,
    /// Which technology.
    pub technology: RamTechnology,
    /// The memory parts used.
    pub memory: MemoryPackage,
    /// Access time as a function of the design's probe variable.
    pub access: TimingFormula,
    /// Cycle time as a function of the probe variable (for MRU the
    /// variable is `x + u`, where `u` is the probability the MRU list must
    /// be updated).
    pub cycle: TimingFormula,
    /// Package count (tag memory + comparison logic).
    pub packages: u32,
}

impl TrialDesign {
    /// Access time at `v` probes, ns.
    pub fn access_ns(&self, v: f64) -> f64 {
        self.access.at(v)
    }

    /// Cycle time at `v` (for MRU, pass `x + u`), ns.
    pub fn cycle_ns(&self, v: f64) -> f64 {
        self.cycle.at(v)
    }
}

/// The paper's four dynamic-RAM trial designs (left half of Table 2):
/// 1M 24-bit tags, hybrid packages.
pub fn paper_dram_designs() -> Vec<TrialDesign> {
    vec![
        TrialDesign {
            implementation: LookupImpl::DirectMapped,
            technology: RamTechnology::Dram,
            memory: MemoryPackage {
                organization: "1Mx8".into(),
                basic_access_ns: 100.0,
                page_mode_access_ns: None,
                basic_cycle_ns: 190.0,
                page_mode_cycle_ns: None,
            },
            access: TimingFormula::constant(136.0),
            cycle: TimingFormula::constant(230.0),
            packages: 18,
        },
        TrialDesign {
            implementation: LookupImpl::Traditional,
            technology: RamTechnology::Dram,
            memory: MemoryPackage {
                organization: "256Kx8".into(),
                basic_access_ns: 80.0,
                page_mode_access_ns: None,
                basic_cycle_ns: 160.0,
                page_mode_cycle_ns: None,
            },
            access: TimingFormula::constant(132.0),
            cycle: TimingFormula::constant(190.0),
            packages: 42,
        },
        TrialDesign {
            implementation: LookupImpl::Mru,
            technology: RamTechnology::Dram,
            memory: MemoryPackage {
                organization: "1Mx8".into(),
                basic_access_ns: 100.0,
                page_mode_access_ns: Some(35.0),
                basic_cycle_ns: 190.0,
                page_mode_cycle_ns: Some(35.0),
            },
            access: TimingFormula::linear(150.0, 50.0),
            cycle: TimingFormula::linear(250.0, 50.0),
            packages: 22,
        },
        TrialDesign {
            implementation: LookupImpl::Partial,
            technology: RamTechnology::Dram,
            memory: MemoryPackage {
                organization: "1Mx8".into(),
                basic_access_ns: 100.0,
                page_mode_access_ns: Some(35.0),
                basic_cycle_ns: 190.0,
                page_mode_cycle_ns: Some(35.0),
            },
            access: TimingFormula::linear(150.0, 50.0),
            cycle: TimingFormula::linear(250.0, 50.0),
            packages: 21,
        },
    ]
}

/// The paper's four static-RAM trial designs (right half of Table 2).
pub fn paper_sram_designs() -> Vec<TrialDesign> {
    vec![
        TrialDesign {
            implementation: LookupImpl::DirectMapped,
            technology: RamTechnology::Sram,
            memory: MemoryPackage {
                organization: "1Mx4".into(),
                basic_access_ns: 40.0,
                page_mode_access_ns: None,
                basic_cycle_ns: 40.0,
                page_mode_cycle_ns: None,
            },
            access: TimingFormula::constant(61.0),
            cycle: TimingFormula::constant(85.0),
            packages: 20,
        },
        TrialDesign {
            implementation: LookupImpl::Traditional,
            technology: RamTechnology::Sram,
            memory: MemoryPackage {
                organization: "256Kx(16,8)".into(),
                basic_access_ns: 40.0,
                page_mode_access_ns: None,
                basic_cycle_ns: 40.0,
                page_mode_cycle_ns: None,
            },
            access: TimingFormula::constant(84.0),
            cycle: TimingFormula::constant(100.0),
            packages: 37,
        },
        TrialDesign {
            implementation: LookupImpl::Mru,
            technology: RamTechnology::Sram,
            memory: MemoryPackage {
                organization: "1Mx4".into(),
                basic_access_ns: 40.0,
                page_mode_access_ns: None,
                basic_cycle_ns: 40.0,
                page_mode_cycle_ns: None,
            },
            access: TimingFormula::linear(65.0, 55.0),
            cycle: TimingFormula::linear(75.0, 55.0),
            packages: 25,
        },
        TrialDesign {
            implementation: LookupImpl::Partial,
            technology: RamTechnology::Sram,
            memory: MemoryPackage {
                organization: "1Mx4".into(),
                basic_access_ns: 40.0,
                page_mode_access_ns: None,
                basic_cycle_ns: 40.0,
                page_mode_cycle_ns: None,
            },
            access: TimingFormula::linear(65.0, 55.0),
            cycle: TimingFormula::linear(75.0, 55.0),
            packages: 24,
        },
    ]
}

/// Effective mean access time of a serial design given the measured probe
/// distribution: `x_mean` is the mean probe count *after* the initial
/// consult (MRU) or the mean step-two probes (partial).
pub fn effective_access_ns(design: &TrialDesign, x_mean: f64) -> f64 {
    design.access_ns(x_mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_render_like_the_paper() {
        assert_eq!(TimingFormula::linear(150.0, 50.0).render("x"), "150+50x");
        assert_eq!(TimingFormula::constant(136.0).render("x"), "136");
        assert_eq!(TimingFormula::linear(75.0, 55.0).render("x+u"), "75+55x+u");
    }

    #[test]
    fn dram_designs_match_table2() {
        let d = paper_dram_designs();
        assert_eq!(d.len(), 4);
        assert_eq!(d[0].access_ns(0.0), 136.0);
        assert_eq!(d[1].packages, 42);
        // MRU with x = 1 (hit to the first MRU entry): 200 ns.
        assert_eq!(d[2].access_ns(1.0), 200.0);
        // Partial with y = 1: 200 ns; with y = 0 (miss, no step two): 150 ns.
        assert_eq!(d[3].access_ns(1.0), 200.0);
        assert_eq!(d[3].access_ns(0.0), 150.0);
    }

    #[test]
    fn sram_designs_match_table2() {
        let d = paper_sram_designs();
        assert_eq!(d[0].packages, 20);
        assert_eq!(d[1].access_ns(0.0), 84.0);
        assert_eq!(d[2].access_ns(1.0), 120.0);
        assert_eq!(d[3].cycle_ns(2.0), 185.0);
    }

    #[test]
    fn serial_designs_save_packages_vs_traditional() {
        for designs in [paper_dram_designs(), paper_sram_designs()] {
            let traditional = designs
                .iter()
                .find(|d| d.implementation == LookupImpl::Traditional)
                .unwrap()
                .packages;
            for d in &designs {
                if matches!(d.implementation, LookupImpl::Mru | LookupImpl::Partial) {
                    assert!(
                        d.packages < traditional,
                        "{} should use fewer packages than traditional",
                        d.implementation
                    );
                    // "Tag memory cost is directly reduced, by 1/3 to 1/2".
                    let saving = 1.0 - d.packages as f64 / traditional as f64;
                    assert!(saving >= 0.30, "saving {saving} too small");
                }
            }
        }
    }

    #[test]
    fn serial_designs_are_slower_than_traditional_per_lookup() {
        // With even one post-consult probe, MRU/partial access exceeds the
        // traditional implementation — the paper's "factor of two or more"
        // for multi-probe lookups.
        for designs in [paper_dram_designs(), paper_sram_designs()] {
            let traditional = designs
                .iter()
                .find(|d| d.implementation == LookupImpl::Traditional)
                .unwrap();
            for d in &designs {
                if matches!(d.implementation, LookupImpl::Mru | LookupImpl::Partial) {
                    assert!(d.access_ns(2.0) > 2.0 * traditional.access_ns(0.0) * 0.9);
                }
            }
        }
    }

    #[test]
    fn page_mode_is_cheaper_than_basic() {
        for d in paper_dram_designs() {
            if let Some(pm) = d.memory.page_mode_access_ns {
                assert!(
                    pm < d.memory.basic_access_ns / 2.0,
                    "subsequent probes take less than half the first"
                );
            }
        }
    }

    #[test]
    fn effective_access_interpolates() {
        let d = &paper_dram_designs()[2];
        assert_eq!(effective_access_ns(d, 1.5), 225.0);
    }

    #[test]
    fn displays_are_human_readable() {
        assert_eq!(LookupImpl::Mru.to_string(), "MRU");
        assert_eq!(RamTechnology::Dram.to_string(), "dynamic RAM");
    }
}
