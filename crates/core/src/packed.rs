//! Packed-lane tag storage and the SWAR step-one compare.
//!
//! The partial-compare scheme's step one (§2.2) reads a `k`-bit slice of
//! every stored tag in a subset and compares all of them against the
//! corresponding slices of the incoming tag *in one probe*. That is an
//! inherently data-parallel bitmask operation, so this module evaluates it
//! as one: the `a/s` slices of a subset are packed contiguously into a
//! single `u64` **lane word** (slot `i` occupies bits `[i·k, (i+1)·k)`),
//! and one XOR plus a carry-free zero-field detect answers every slot's
//! compare at once — SWAR ("SIMD within a register"), no nightly
//! `std::simd`, MSRV 1.75.
//!
//! # Layout
//!
//! For a `PartialCompare` configured with `t`-bit tags, `s` subsets and an
//! `a`-way set, `k = ⌊t·s/a⌋` and each subset holds `n = a/s` slots. The
//! lane word of subset `j` is
//!
//! ```text
//! word[j] = Σ_slot  slice(T(tag[j·n + slot]), slot)  <<  slot·k
//! ```
//!
//! where `T` is the configured [`TransformKind`] applied **at store time**
//! (the scalar path re-transforms every stored tag on every lookup), and
//! `slice(x, i)` is bits `[i·k, (i+1)·k)` of `x` — except under
//! [`TransformKind::Swap`], where every slot contributes bits `[0, k)`.
//! Because slot `i`'s slice already sits at bit `i·k` of the transformed
//! tag, non-swap packing is a mask-and-OR per way; swap packing shifts the
//! low field into place.
//!
//! The incoming tag packs the same way: `T(tag)` masked to the lane region
//! for the slice schemes, or the low field broadcast to every slot (one
//! multiply by the lane ladder) for swap.
//!
//! # The zero-field detect
//!
//! With both sides packed, `x = word ^ incoming` has an all-zero field
//! exactly where a slot's partial compare passes. Fields are flagged
//! without inter-field carries using the classic SWAR trick: let `L` be
//! the *ladder* `Σ 2^{i·k}`, `H = L << (k−1)` the per-field top bits, and
//! `C = H − L` (each field holds `2^{k−1} − 1`). Then
//!
//! ```text
//! match = !( ((x & !H) + C) | x ) & H
//! ```
//!
//! has field `i`'s top bit set iff field `i` of `x` is zero: the add can
//! only carry *within* a field (at most `(2^{k−1}−1) + (2^{k−1}−1) <
//! 2^k`), and it sets the top bit iff the low `k−1` bits were non-zero;
//! OR-ing `x` back in folds in the field's own top bit.
//!
//! Validity is applied at match time — a lane word retains the slice of
//! whatever tag a frame last held (mirroring stale tag RAM), and flagged
//! slots whose valid bit is clear are discarded before the step-two full
//! compare, so they can never produce a candidate probe.
//!
//! # Coherence
//!
//! [`PackedLanes`] is the incremental store a cache maintains alongside
//! its frames. Its invariant: **every lane word equals the word
//! [`rebuild`](PackedLanes::rebuild_set) would compute from the current
//! frame tags**, valid or not. The cache must call
//! [`on_fill`](PackedLanes::on_fill) whenever it writes a frame's tag;
//! invalidation and flush keep tags in place, so no lane update is needed
//! (validity is the [`SetView`](crate::SetView)'s concern). Debug builds
//! should assert the invariant at every mutation site via
//! [`assert_coherent`](PackedLanes::assert_coherent).

use crate::lookup::{Lookup, TransformKind};
use crate::set_view::MAX_ASSOC;
use crate::transform::tag_mask;

/// `Σ_{shift = start, start+step, …} 2^shift` for `shift < limit`.
fn spread(start: u32, step: u32, limit: u32) -> u64 {
    debug_assert!(step >= 1 && limit <= 64);
    let mut out = 0u64;
    let mut shift = start;
    while shift < limit {
        out |= 1u64 << shift;
        shift += step;
    }
    out
}

/// Precomputed constants for one `(t, k, n, transform)` lane geometry.
///
/// Built once per lookup on the view-only path, or once per cache when a
/// [`PackedLanes`] store is registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LaneCodec {
    tag_bits: u32,
    k: u32,
    per_subset: u32,
    transform: TransformKind,
    /// `Σ_{i<n} 2^{i·k}` — LSB of every field.
    ladder: u64,
    /// `ladder << (k−1)` — top bit of every field.
    high: u64,
    /// `high − ladder` — `2^{k−1} − 1` in every field.
    carry: u64,
    /// Low `n·k` bits — the lane region.
    region: u64,
    /// Transform broadcast constant (`XorFold`: fields ≥ 1; `Improved`:
    /// fields ≥ 2; otherwise unused).
    tspread: u64,
    /// `⌊2^16 / k⌋ + 1` — lets [`slot_of`](Self::slot_of) divide by `k`
    /// with a multiply and shift. Exact for every dividend below 64: the
    /// reciprocal's excess is at most `k`, so the error term
    /// `bit_pos · excess` stays under `2^16`.
    slot_recip: u64,
}

impl LaneCodec {
    pub(crate) fn new(tag_bits: u32, k: u32, per_subset: u32, transform: TransformKind) -> Self {
        debug_assert!((1..=64).contains(&tag_bits));
        debug_assert!(k >= 1 && per_subset >= 1 && per_subset * k <= 64);
        let ladder = spread(0, k, per_subset * k);
        let high = ladder << (k - 1);
        let tspread = match transform {
            TransformKind::None | TransformKind::Swap => 0,
            TransformKind::XorFold => spread(k, k, tag_bits),
            TransformKind::Improved => spread(2 * k, k, tag_bits),
        };
        LaneCodec {
            tag_bits,
            k,
            per_subset,
            transform,
            ladder,
            high,
            carry: high - ladder,
            region: tag_mask(per_subset * k),
            tspread,
            slot_recip: (1u64 << 16) / k as u64 + 1,
        }
    }

    /// The configured transform, evaluated in O(1): the per-field XOR
    /// patterns of `XorFold`/`Improved` are low-field broadcasts, and a
    /// `k`-bit value times the ladder-of-shifts constant IS that broadcast
    /// (the partial products land in disjoint fields, so their sum is
    /// their OR; bits past 63 truncate exactly as the scalar shifts do).
    #[inline]
    pub(crate) fn forward(&self, tag: u64) -> u64 {
        let t = tag & tag_mask(self.tag_bits);
        let k = self.k;
        match self.transform {
            TransformKind::None | TransformKind::Swap => t,
            TransformKind::XorFold => {
                let p0 = t & tag_mask(k);
                (t ^ p0.wrapping_mul(self.tspread)) & tag_mask(self.tag_bits)
            }
            TransformKind::Improved => {
                let p0 = t & tag_mask(k);
                let (p1, second) = if k < self.tag_bits {
                    ((t >> k) & tag_mask(k), p0 << k)
                } else {
                    (0, 0)
                };
                (t ^ second ^ (p0 ^ p1).wrapping_mul(self.tspread)) & tag_mask(self.tag_bits)
            }
        }
    }

    /// The lane-word contribution of storing `tag` in slot `slot`.
    #[inline]
    pub(crate) fn store_field(&self, tag: u64, slot: u32) -> u64 {
        debug_assert!(slot < self.per_subset);
        let fwd = self.forward(tag);
        match self.transform {
            // Every slot contributes its own low k bits.
            TransformKind::Swap => (fwd & tag_mask(self.k)) << (slot * self.k),
            // Slot i contributes field i, which already sits at bit i·k.
            _ => fwd & (tag_mask(self.k) << (slot * self.k)),
        }
    }

    /// The packed incoming-tag lanes every subset word is compared against.
    #[inline]
    pub(crate) fn encode_incoming(&self, tag: u64) -> u64 {
        match self.transform {
            // Broadcast the low field into every slot in one multiply.
            TransformKind::Swap => {
                (tag & tag_mask(self.tag_bits) & tag_mask(self.k)).wrapping_mul(self.ladder)
            }
            _ => self.forward(tag) & self.region,
        }
    }

    /// Top-of-field bitmask flagging every slot whose packed slice equals
    /// the incoming slice (see the module docs for the carry-free detect).
    #[inline]
    pub(crate) fn match_mask(&self, word: u64, incoming: u64) -> u64 {
        let x = (word ^ incoming) & self.region;
        !(((x & !self.high) + self.carry) | x) & self.high
    }

    /// The slot whose field-top bit sits at `bit_pos`. Division-free:
    /// `bit_pos` is always under 64, where the precomputed reciprocal is
    /// exact (see [`slot_recip`](Self::slot_recip)).
    #[inline]
    pub(crate) fn slot_of(&self, bit_pos: u32) -> u32 {
        debug_assert!(bit_pos < 64);
        ((bit_pos as u64 * self.slot_recip) >> 16) as u32
    }

    /// The SWAR lookup over caller-maintained lane words: step one is one
    /// [`match_mask`](Self::match_mask) per subset word, step two serially
    /// full-compares the flagged slots in ascending order — probe- and
    /// result-identical to the scalar partial-compare walk. Everything the
    /// loop needs is precomputed in the codec, so the per-access cost is
    /// pure ALU work: no divisions, no table rebuilds.
    #[inline]
    pub(crate) fn swar_lookup(&self, words: &[u64], tags: &[u64], valid: u32, tag: u64) -> Lookup {
        let incoming = self.encode_incoming(tag);
        let n = self.per_subset as usize;
        let mut probes = 0u32;
        let mut hit_way = None;
        'subsets: for (subset, &word) in words.iter().enumerate() {
            probes += 1; // step one: the concurrent partial compare
            let base = subset * n;
            let mut m = self.match_mask(word, incoming);
            // Step two: serial full compares of the partial matchers, in
            // ascending slot order exactly like the scalar loop. A lane
            // word retains the slice of whatever tag a frame last held, so
            // stale invalid slices can appear in `m`; validity is checked
            // per flagged slot — matchers are rare, so this is far cheaper
            // than building a per-subset validity mask up front, and the
            // scalar walk likewise skips invalid ways before the partial
            // compare, so the probe count is unchanged.
            while m != 0 {
                let slot = self.slot_of(m.trailing_zeros());
                m &= m - 1;
                let w = base + slot as usize;
                if (valid >> w) & 1 == 0 {
                    continue;
                }
                probes += 1;
                if tags[w] == tag {
                    hit_way = Some(w as u8);
                    break 'subsets;
                }
            }
        }
        Lookup { hit_way, probes }
    }
}

/// The lane geometry of one cache ↔ strategy pairing: tag width, subset
/// count, transform, and the (fixed) associativity of the cache's sets.
///
/// A spec exists only for geometries the packed representation supports:
/// at least two ways, `subsets` dividing `ways`, and a non-zero `k`.
/// One-way sets are direct-mapped lookups that never consult lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneSpec {
    tag_bits: u32,
    subsets: u32,
    transform: TransformKind,
    ways: u32,
}

impl LaneSpec {
    /// Builds the spec, or `None` when the geometry has no packed form
    /// (`ways < 2`, `ways > MAX_ASSOC`, `subsets` not dividing `ways`, or
    /// tags too narrow for `ways/subsets` concurrent compares).
    pub fn try_new(
        tag_bits: u32,
        subsets: u32,
        transform: TransformKind,
        ways: u32,
    ) -> Option<Self> {
        if !(1..=64).contains(&tag_bits) || subsets == 0 {
            return None;
        }
        if ways < 2 || ways as usize > MAX_ASSOC || ways % subsets != 0 {
            return None;
        }
        let per_subset = ways / subsets;
        if tag_bits / per_subset == 0 {
            return None;
        }
        Some(LaneSpec {
            tag_bits,
            subsets,
            transform,
            ways,
        })
    }

    /// Stored-tag width `t`.
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Number of subsets `s`.
    pub fn subsets(&self) -> u32 {
        self.subsets
    }

    /// The transform applied at store time.
    pub fn transform(&self) -> TransformKind {
        self.transform
    }

    /// The associativity the lanes are packed for.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Partial-compare width `k = ⌊t·s/a⌋`.
    pub fn k(&self) -> u32 {
        self.tag_bits / self.per_subset()
    }

    /// Slots per subset, `a/s`.
    pub fn per_subset(&self) -> u32 {
        self.ways / self.subsets
    }

    /// Lane words per set (one per subset).
    pub fn words_per_set(&self) -> usize {
        self.subsets as usize
    }

    pub(crate) fn codec(&self) -> LaneCodec {
        LaneCodec::new(self.tag_bits, self.k(), self.per_subset(), self.transform)
    }
}

/// Incrementally maintained packed-lane storage for every set of a cache.
///
/// See the module docs for the coherence contract: the owning cache calls
/// [`on_fill`](Self::on_fill) at every frame-tag write and leaves lanes
/// alone on invalidate/flush (which keep tags in place).
#[derive(Debug, Clone)]
pub struct PackedLanes {
    spec: LaneSpec,
    codec: LaneCodec,
    sets: usize,
    /// `sets × subsets` lane words, set-major.
    words: Vec<u64>,
}

impl PackedLanes {
    /// Zeroed lanes for `sets` sets — coherent with an all-zero-tag cache
    /// (a fresh cache's frames hold tag 0).
    pub fn new(spec: LaneSpec, sets: usize) -> Self {
        PackedLanes {
            spec,
            codec: spec.codec(),
            sets,
            words: vec![0; sets * spec.words_per_set()],
        }
    }

    /// The geometry these lanes are packed for.
    pub fn spec(&self) -> LaneSpec {
        self.spec
    }

    /// Number of sets covered.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Updates the one lane field affected by storing `tag` in `way` of
    /// `set`. O(1): a mask and an OR on a single word.
    pub fn on_fill(&mut self, set: usize, way: usize, tag: u64) {
        let n = self.spec.per_subset() as usize;
        let subset = way / n;
        let slot = (way % n) as u32;
        let k = self.spec.k();
        let field_mask = tag_mask(k) << (slot * k);
        let word = &mut self.words[set * self.spec.words_per_set() + subset];
        *word = (*word & !field_mask) | self.codec.store_field(tag, slot);
    }

    /// Recomputes every lane word of `set` from `tags` (one per way).
    /// O(ways); used for bulk (re)initialization and coherence checks.
    pub fn rebuild_set(&mut self, set: usize, tags: &[u64]) {
        assert_eq!(tags.len(), self.spec.ways() as usize, "tag count mismatch");
        let n = self.spec.per_subset() as usize;
        let base = set * self.spec.words_per_set();
        for subset in 0..self.spec.words_per_set() {
            let mut word = 0u64;
            for slot in 0..n {
                word |= self.codec.store_field(tags[subset * n + slot], slot as u32);
            }
            self.words[base + subset] = word;
        }
    }

    /// The lane words of `set`, one per subset.
    pub fn set_words(&self, set: usize) -> &[u64] {
        let base = set * self.spec.words_per_set();
        &self.words[base..base + self.spec.words_per_set()]
    }

    /// A borrowed view of `set`'s lanes for a lookup.
    pub fn view(&self, set: usize) -> LaneView<'_> {
        LaneView {
            spec: self.spec,
            codec: &self.codec,
            words: self.set_words(set),
        }
    }

    /// Panics unless `set`'s lane words match what `rebuild_set` would
    /// compute from `tags` — the coherence invariant. Debug-build helper
    /// for cache mutation sites.
    pub fn assert_coherent(&self, set: usize, tags: &[u64]) {
        assert_eq!(tags.len(), self.spec.ways() as usize, "tag count mismatch");
        let n = self.spec.per_subset() as usize;
        for (subset, &word) in self.set_words(set).iter().enumerate() {
            let mut expect = 0u64;
            for slot in 0..n {
                expect |= self.codec.store_field(tags[subset * n + slot], slot as u32);
            }
            assert_eq!(
                word, expect,
                "lane word for set {set} subset {subset} is stale (have {word:#x}, tags imply {expect:#x})"
            );
        }
    }
}

/// One set's packed lanes, borrowed for the duration of a lookup.
///
/// The codec is borrowed, not copied: a view is built on every lookup of
/// the fast path, and the codec's precomputed constants are several words
/// wide.
#[derive(Debug, Clone, Copy)]
pub struct LaneView<'a> {
    pub(crate) spec: LaneSpec,
    pub(crate) codec: &'a LaneCodec,
    pub(crate) words: &'a [u64],
}

impl LaneView<'_> {
    /// The geometry these lanes are packed for.
    pub fn spec(&self) -> LaneSpec {
        self.spec
    }

    /// The lane words, one per subset.
    pub fn words(&self) -> &[u64] {
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{Improved, TagTransform, XorFold};

    fn ref_transform(kind: TransformKind, t: u32, k: u32, tag: u64) -> u64 {
        let masked = tag & tag_mask(t);
        match kind {
            TransformKind::None | TransformKind::Swap => masked,
            TransformKind::XorFold => XorFold::new(t, k).forward(masked),
            TransformKind::Improved => Improved::new(t, k).forward(masked),
        }
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn fast_forward_matches_reference_transforms() {
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        for t in 1..=64u32 {
            for k in 1..=t {
                for kind in [
                    TransformKind::None,
                    TransformKind::XorFold,
                    TransformKind::Improved,
                    TransformKind::Swap,
                ] {
                    // per_subset chosen so n·k ≤ 64 (codec precondition).
                    let n = (64 / k).clamp(1, 4);
                    let codec = LaneCodec::new(t, k, n, kind);
                    for _ in 0..8 {
                        let x = xorshift(&mut s);
                        assert_eq!(
                            codec.forward(x),
                            ref_transform(kind, t, k, x),
                            "t={t} k={k} {kind:?} x={x:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn match_mask_flags_exactly_the_equal_fields() {
        let mut s = 0xDEAD_BEEF_0BAD_F00Du64;
        for k in 1..=64u32 {
            let n = 64 / k;
            if n == 0 {
                continue;
            }
            let codec = LaneCodec::new(64.min(n * k), k, n, TransformKind::None);
            for _ in 0..64 {
                let a = xorshift(&mut s) & codec.region;
                let mut b = xorshift(&mut s) & codec.region;
                // Force a few fields equal so matches actually occur.
                for slot in 0..n {
                    if xorshift(&mut s) & 1 == 0 {
                        let fm = tag_mask(k) << (slot * k);
                        b = (b & !fm) | (a & fm);
                    }
                }
                let m = codec.match_mask(a, b);
                for slot in 0..n {
                    let fm = tag_mask(k) << (slot * k);
                    let expect = (a & fm) == (b & fm);
                    let flagged = m & (1u64 << (slot * k + k - 1)) != 0;
                    assert_eq!(flagged, expect, "k={k} slot={slot} a={a:#x} b={b:#x}");
                }
            }
        }
    }

    #[test]
    fn slot_of_reciprocal_is_exact_for_every_bit_position() {
        for k in 1..=64u32 {
            let n = (64 / k).max(1);
            let codec = LaneCodec::new(64.min(n * k), k, n, TransformKind::None);
            for bit_pos in 0..64u32 {
                assert_eq!(codec.slot_of(bit_pos), bit_pos / k, "k={k} pos={bit_pos}");
            }
        }
    }

    #[test]
    fn lane_spec_rejects_impossible_geometries() {
        use TransformKind::None as N;
        assert!(LaneSpec::try_new(16, 1, N, 1).is_none(), "one way");
        assert!(LaneSpec::try_new(16, 3, N, 8).is_none(), "s ∤ a");
        assert!(LaneSpec::try_new(8, 1, N, 16).is_none(), "k = 0");
        assert!(LaneSpec::try_new(16, 1, N, 64).is_none(), "> MAX_ASSOC");
        assert!(LaneSpec::try_new(0, 1, N, 8).is_none(), "zero-width tags");
        let s = LaneSpec::try_new(16, 2, N, 8).unwrap();
        assert_eq!((s.k(), s.per_subset(), s.words_per_set()), (4, 4, 2));
    }

    #[test]
    fn on_fill_matches_rebuild() {
        let spec = LaneSpec::try_new(16, 2, TransformKind::XorFold, 8).unwrap();
        let mut incremental = PackedLanes::new(spec, 4);
        let mut bulk = PackedLanes::new(spec, 4);
        let mut tags = vec![[0u64; 8]; 4];
        let mut s = 0x0F1E_2D3C_4B5A_6978u64;
        for _ in 0..200 {
            let set = (xorshift(&mut s) % 4) as usize;
            let way = (xorshift(&mut s) % 8) as usize;
            let tag = xorshift(&mut s) & 0xFFFF;
            tags[set][way] = tag;
            incremental.on_fill(set, way, tag);
            bulk.rebuild_set(set, &tags[set]);
            assert_eq!(incremental.set_words(set), bulk.set_words(set));
            incremental.assert_coherent(set, &tags[set]);
        }
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn assert_coherent_catches_missed_fills() {
        let spec = LaneSpec::try_new(16, 1, TransformKind::None, 4).unwrap();
        let lanes = PackedLanes::new(spec, 1);
        // Tags claim way 0 holds 0xBEEF but the lanes were never updated.
        lanes.assert_coherent(0, &[0xBEEF, 0, 0, 0]);
    }
}
