//! Probe accounting for trace-driven runs.

use serde::{Deserialize, Serialize};

/// A count of events and the probes they cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tally {
    /// Number of events.
    pub count: u64,
    /// Total probes across those events.
    pub probes: u64,
}

impl Tally {
    /// Records one event costing `probes`.
    pub fn record(&mut self, probes: u32) {
        self.count += 1;
        self.probes += probes as u64;
    }

    /// Mean probes per event; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.probes as f64 / self.count as f64
        }
    }
}

impl std::ops::Add for Tally {
    type Output = Tally;

    fn add(self, other: Tally) -> Tally {
        Tally {
            count: self.count + other.count,
            probes: self.probes + other.probes,
        }
    }
}

/// Probe statistics for one lookup strategy over one simulation, split the
/// way the paper reports them: read-in hits, read-in misses, and
/// write-backs.
///
/// Table 4's conventions are reproduced by the accessors:
/// [`read_in_mean`](ProbeStats::read_in_mean) covers read-ins only
/// (Figures 4–6), while [`total_mean`](ProbeStats::total_mean) also folds
/// in write-backs, which under the write-back optimization cost zero
/// probes but still count as accesses ("they are counted as a hit and
/// included in the averages").
///
/// # Example
///
/// ```
/// use seta_core::ProbeStats;
///
/// let mut s = ProbeStats::new();
/// s.record_hit(2);
/// s.record_miss(4);
/// s.record_write_back(0);
/// assert_eq!(s.hit_mean(), 2.0);
/// assert_eq!(s.read_in_mean(), 3.0);
/// assert_eq!(s.total_mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeStats {
    /// Read-ins that hit.
    pub hits: Tally,
    /// Read-ins that missed.
    pub misses: Tally,
    /// Write-backs (zero probes each under the write-back optimization).
    pub write_backs: Tally,
}

impl ProbeStats {
    /// Zeroed statistics.
    pub fn new() -> Self {
        ProbeStats::default()
    }

    /// Records a read-in hit costing `probes`.
    pub fn record_hit(&mut self, probes: u32) {
        self.hits.record(probes);
    }

    /// Records a read-in miss costing `probes`.
    pub fn record_miss(&mut self, probes: u32) {
        self.misses.record(probes);
    }

    /// Records a write-back costing `probes` (zero under the optimization).
    pub fn record_write_back(&mut self, probes: u32) {
        self.write_backs.record(probes);
    }

    /// Mean probes per read-in hit.
    pub fn hit_mean(&self) -> f64 {
        self.hits.mean()
    }

    /// Mean probes per read-in miss.
    pub fn miss_mean(&self) -> f64 {
        self.misses.mean()
    }

    /// Mean probes per read-in (hits and misses together).
    pub fn read_in_mean(&self) -> f64 {
        (self.hits + self.misses).mean()
    }

    /// Mean probes per L2 access, write-backs included (Table 4's "Total").
    pub fn total_mean(&self) -> f64 {
        (self.hits + self.misses + self.write_backs).mean()
    }

    /// Total events recorded.
    pub fn accesses(&self) -> u64 {
        self.hits.count + self.misses.count + self.write_backs.count
    }
}

impl std::ops::Add for ProbeStats {
    type Output = ProbeStats;

    fn add(self, other: ProbeStats) -> ProbeStats {
        ProbeStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            write_backs: self.write_backs + other.write_backs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_mean_handles_empty() {
        assert_eq!(Tally::default().mean(), 0.0);
    }

    #[test]
    fn tally_records_and_averages() {
        let mut t = Tally::default();
        t.record(1);
        t.record(3);
        assert_eq!(t.count, 2);
        assert_eq!(t.probes, 4);
        assert_eq!(t.mean(), 2.0);
    }

    #[test]
    fn read_in_mean_excludes_write_backs() {
        let mut s = ProbeStats::new();
        s.record_hit(2);
        s.record_hit(4);
        s.record_miss(6);
        s.record_write_back(0);
        s.record_write_back(0);
        assert_eq!(s.hit_mean(), 3.0);
        assert_eq!(s.miss_mean(), 6.0);
        assert_eq!(s.read_in_mean(), 4.0);
        // Total spreads 12 probes over 5 accesses.
        assert!((s.total_mean() - 2.4).abs() < 1e-12);
        assert_eq!(s.accesses(), 5);
    }

    #[test]
    fn non_optimized_write_backs_cost_probes() {
        let mut s = ProbeStats::new();
        s.record_hit(2);
        s.record_write_back(3);
        assert_eq!(s.total_mean(), 2.5);
    }

    #[test]
    fn add_merges_componentwise() {
        let mut a = ProbeStats::new();
        a.record_hit(2);
        let mut b = ProbeStats::new();
        b.record_miss(4);
        let c = a + b;
        assert_eq!(c.hits.count, 1);
        assert_eq!(c.misses.count, 1);
        assert_eq!(c.read_in_mean(), 3.0);
    }
}
