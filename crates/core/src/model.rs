//! The closed-form expected-probe model of §2 and Table 1.
//!
//! All formulas assume `a`-way sets, `t`-bit tags, `k`-bit partial
//! compares, `s` subsets, and — for the partial scheme — independent
//! uniformly distributed tag slices (the probabilistic lower bound the
//! trace-driven runs of Figure 6 are compared against).

/// Expected probes for a traditional (parallel) lookup — hit or miss.
pub fn traditional() -> f64 {
    1.0
}

/// Expected probes for a naive serial lookup that hits:
/// `(a−1)/2 + 1` (half the non-matching tags are examined first).
///
/// # Panics
///
/// Panics if `a` is zero.
pub fn naive_hit(a: u32) -> f64 {
    assert!(a > 0, "associativity must be positive");
    (a as f64 - 1.0) / 2.0 + 1.0
}

/// Expected probes for a naive serial lookup that misses: all `a` tags.
///
/// # Panics
///
/// Panics if `a` is zero.
pub fn naive_miss(a: u32) -> f64 {
    assert!(a > 0, "associativity must be positive");
    a as f64
}

/// Expected probes for an MRU lookup that hits: `1 + Σ i·fᵢ`, where `fᵢ`
/// is the probability that the `i`-th most-recently-used tag matches,
/// given a hit (`f` is indexed from 0, so `f[0]` is `f₁`).
///
/// # Panics
///
/// Panics if `f` is empty or does not sum to ~1.
pub fn mru_hit(f: &[f64]) -> f64 {
    assert!(!f.is_empty(), "need at least one MRU-distance probability");
    let total: f64 = f.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "fᵢ must sum to 1 (got {total})");
    1.0 + f
        .iter()
        .enumerate()
        .map(|(i, &fi)| (i as f64 + 1.0) * fi)
        .sum::<f64>()
}

/// Expected probes for an MRU lookup that misses: `1 + a` (the MRU list is
/// consulted uselessly, then the whole set is scanned).
///
/// # Panics
///
/// Panics if `a` is zero.
pub fn mru_miss(a: u32) -> f64 {
    assert!(a > 0, "associativity must be positive");
    a as f64 + 1.0
}

/// The partial-compare width `k = ⌊t·s/a⌋` for `t`-bit tags, `a` ways and
/// `s` subsets.
///
/// # Panics
///
/// Panics if `s` does not divide `a`, or the resulting `k` would be zero.
pub fn partial_k(t: u32, a: u32, s: u32) -> u32 {
    assert!(a > 0 && s > 0, "a and s must be positive");
    assert!(a % s == 0, "{s} subsets do not divide {a} ways");
    let k = t / (a / s);
    assert!(
        k > 0,
        "{t}-bit tags cannot supply {} concurrent compares",
        a / s
    );
    k
}

/// Expected probes for a partial-compare lookup that hits, with `a` ways,
/// `k`-bit compares, and `s` subsets:
///
/// ```text
/// (s+1)/2  +  1  +  (s−1)/2 · (a/s)/2^k  +  (a/s − 1)/2^(k+1)
/// ```
///
/// (step-one probes to reach the hit subset, the matching full compare,
/// false matches in earlier subsets, false matches examined before the hit
/// in its own subset). With `s = 1` this is Table 1's
/// `2 + (a−1)/2^(k+1)`.
///
/// # Panics
///
/// Panics if `s` does not divide `a` or either is zero.
pub fn partial_hit(a: u32, k: u32, s: u32) -> f64 {
    assert!(a > 0 && s > 0, "a and s must be positive");
    assert!(a % s == 0, "{s} subsets do not divide {a} ways");
    let (a, s) = (a as f64, s as f64);
    let per = a / s;
    let sel = (2f64).powi(k as i32);
    (s + 1.0) / 2.0 + 1.0 + (s - 1.0) / 2.0 * per / sel + (per - 1.0) / (2.0 * sel)
}

/// Expected probes for a partial-compare lookup that misses:
/// `s + a/2^k` (every subset's step-one probe, plus all false matches).
///
/// # Panics
///
/// Panics if `s` does not divide `a` or either is zero.
pub fn partial_miss(a: u32, k: u32, s: u32) -> f64 {
    assert!(a > 0 && s > 0, "a and s must be positive");
    assert!(a % s == 0, "{s} subsets do not divide {a} ways");
    s as f64 + a as f64 / (2f64).powi(k as i32)
}

/// The optimum partial-compare width for hits only, treating variables as
/// continuous: `k_opt = log₂(t) − 1/2` (§2.2's rule 2).
///
/// # Panics
///
/// Panics if `t` is zero.
pub fn optimal_k(t: u32) -> f64 {
    assert!(t > 0, "tag width must be positive");
    (t as f64).log2() - 0.5
}

/// The subset count (a power of two dividing `a`) minimizing expected
/// probes for the given hit and miss mix (§2.2's rule 1: compute the
/// expectation for every `s` and take the minimum).
///
/// # Panics
///
/// Panics if `a` or `t` is zero, or `miss_ratio` is not a probability.
pub fn best_subsets(t: u32, a: u32, miss_ratio: f64) -> u32 {
    assert!(a > 0 && t > 0, "a and t must be positive");
    assert!(
        (0.0..=1.0).contains(&miss_ratio),
        "miss_ratio {miss_ratio} is not a probability"
    );
    let mut best = (f64::INFINITY, 1u32);
    let mut s = 1u32;
    while s <= a {
        if a % s == 0 && t / (a / s) >= 1 {
            let k = partial_k(t, a, s);
            let e = (1.0 - miss_ratio) * partial_hit(a, k, s) + miss_ratio * partial_miss(a, k, s);
            if e < best.0 {
                best = (e, s);
            }
        }
        s *= 2;
    }
    best.1
}

/// §2.2's rule 3: the smallest subset count giving at least 4-bit partial
/// compares (or `a` subsets — the naive degenerate — if none does).
///
/// # Panics
///
/// Panics if `a` or `t` is zero.
pub fn subsets_for_four_bit_compares(t: u32, a: u32) -> u32 {
    assert!(a > 0 && t > 0, "a and t must be positive");
    let mut s = 1u32;
    while s <= a {
        if a % s == 0 && t / (a / s) >= 4 {
            return s;
        }
        s *= 2;
    }
    a
}

/// Expected probes for a banked frame-order lookup that hits, with `b`
/// tags compared per probe: positions are uniform under no locality, so
/// the expectation is `1 + E[⌊pos/b⌋]` over positions `0..a`.
///
/// `b = 1` reduces to [`naive_hit`]; `b = a` to [`traditional`].
///
/// # Panics
///
/// Panics if `a` or `b` is zero.
pub fn banked_hit(a: u32, b: u32) -> f64 {
    assert!(a > 0 && b > 0, "a and b must be positive");
    let groups: u64 = (0..a as u64).map(|pos| pos / b as u64).sum();
    1.0 + groups as f64 / a as f64
}

/// Expected probes for a banked frame-order lookup that misses:
/// `⌈a/b⌉` group probes.
///
/// # Panics
///
/// Panics if `a` or `b` is zero.
pub fn banked_miss(a: u32, b: u32) -> f64 {
    assert!(a > 0 && b > 0, "a and b must be positive");
    a.div_ceil(b) as f64
}

/// Expected probes for a banked MRU-order lookup that hits: one probe for
/// the MRU list plus `E[⌈i/b⌉]` group probes, where `f` is the
/// MRU-distance distribution (`f[0]` = probability the MRU tag matches).
///
/// `b = 1` reduces to [`mru_hit`].
///
/// # Panics
///
/// Panics if `b` is zero, `f` is empty, or `f` does not sum to ~1.
pub fn banked_mru_hit(f: &[f64], b: u32) -> f64 {
    assert!(b > 0, "b must be positive");
    assert!(!f.is_empty(), "need at least one MRU-distance probability");
    let total: f64 = f.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "fᵢ must sum to 1 (got {total})");
    1.0 + f
        .iter()
        .enumerate()
        .map(|(i, &fi)| (i as u32 + 1).div_ceil(b) as f64 * fi)
        .sum::<f64>()
}

/// Expected probes for a banked MRU-order lookup that misses:
/// `1 + ⌈a/b⌉`.
///
/// # Panics
///
/// Panics if `a` or `b` is zero.
pub fn banked_mru_miss(a: u32, b: u32) -> f64 {
    1.0 + banked_miss(a, b)
}

/// Expected total probes per access given hit/miss expectations and a miss
/// ratio.
///
/// # Panics
///
/// Panics if `miss_ratio` is not a probability.
pub fn blend(hit: f64, miss: f64, miss_ratio: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&miss_ratio),
        "miss_ratio {miss_ratio} is not a probability"
    );
    (1.0 - miss_ratio) * hit + miss_ratio * miss
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 5e-3
    }

    #[test]
    fn table1_traditional_row() {
        assert_eq!(traditional(), 1.0);
    }

    #[test]
    fn table1_naive_row() {
        // a=4: hit 2.5, miss 4.
        assert!(close(naive_hit(4), 2.5));
        assert!(close(naive_miss(4), 4.0));
    }

    #[test]
    fn table1_mru_row() {
        // a=4: miss = 5; hit ranges over [2,5] depending on f.
        assert!(close(mru_miss(4), 5.0));
        assert!(close(mru_hit(&[1.0, 0.0, 0.0, 0.0]), 2.0));
        assert!(close(mru_hit(&[0.0, 0.0, 0.0, 1.0]), 5.0));
        assert!(close(mru_hit(&[0.25; 4]), 1.0 + 2.5));
    }

    #[test]
    fn table1_partial_row() {
        // a=4, k=4, s=1: hit 2 + 3/32 = 2.09..., miss 1 + 4/16 = 1.25.
        assert!(close(partial_hit(4, 4, 1), 2.09375));
        assert!(close(partial_miss(4, 4, 1), 1.25));
    }

    #[test]
    fn table1_partial_subset_rows() {
        // a=8, k=2, s=1: hit 2 + 7/8 = 2.875 ("2.88"), miss 1 + 8/4 = 3.
        assert!(close(partial_hit(8, 2, 1), 2.875));
        assert!(close(partial_miss(8, 2, 1), 3.0));
        // a=8, k=4, s=2: hit 2.71875 ("2.72"), miss 2 + 8/16 = 2.5.
        assert!(close(partial_hit(8, 4, 2), 2.71875));
        assert!(close(partial_miss(8, 4, 2), 2.5));
    }

    #[test]
    fn k_formula_matches_paper_examples() {
        assert_eq!(partial_k(16, 4, 1), 4);
        assert_eq!(partial_k(16, 8, 1), 2);
        assert_eq!(partial_k(16, 8, 2), 4);
        assert_eq!(partial_k(16, 16, 4), 4);
        assert_eq!(partial_k(32, 16, 2), 4);
    }

    #[test]
    fn subsets_reduce_probes_at_eight_way() {
        // The paper's Table 1 note: going from 1 to 2 subsets improves the
        // 8-way partial configuration at t=16.
        let one = blend(partial_hit(8, 2, 1), partial_miss(8, 2, 1), 0.2);
        let two = blend(partial_hit(8, 4, 2), partial_miss(8, 4, 2), 0.2);
        assert!(two < one, "s=2 {two} should beat s=1 {one}");
    }

    #[test]
    fn optimal_k_rule() {
        assert!(close(optimal_k(16), 3.5));
        assert!(close(optimal_k(32), 4.5));
    }

    #[test]
    fn best_subsets_agrees_with_exhaustive_check() {
        // t=16, a=8, 20% misses: s=2 wins (k goes 2 → 4).
        assert_eq!(best_subsets(16, 8, 0.2), 2);
        // t=16, a=4: k is already 4 with s=1.
        assert_eq!(best_subsets(16, 4, 0.2), 1);
        // t=32, a=4: k=8 with s=1; wider subsets only add probes.
        assert_eq!(best_subsets(32, 4, 0.2), 1);
        // t=16, a=16: the paper used s=4 (k=4).
        assert_eq!(best_subsets(16, 16, 0.2), 4);
    }

    #[test]
    fn four_bit_rule_matches_paper_choices() {
        // The paper's Figure 3 used s = 1, 2, 4 for a = 4, 8, 16 at t=16.
        assert_eq!(subsets_for_four_bit_compares(16, 4), 1);
        assert_eq!(subsets_for_four_bit_compares(16, 8), 2);
        assert_eq!(subsets_for_four_bit_compares(16, 16), 4);
        // t=32 halves the needed subsets.
        assert_eq!(subsets_for_four_bit_compares(32, 8), 1);
        assert_eq!(subsets_for_four_bit_compares(32, 16), 2);
    }

    #[test]
    fn banked_reduces_to_named_schemes() {
        // b = 1 is naive; b = a is traditional.
        for a in [2u32, 4, 8, 16] {
            assert!(close(banked_hit(a, 1), naive_hit(a)));
            assert!(close(banked_miss(a, 1), naive_miss(a)));
            assert!(close(banked_hit(a, a), traditional()));
            assert!(close(banked_miss(a, a), traditional()));
        }
        let f = [0.5, 0.25, 0.125, 0.125];
        assert!(close(banked_mru_hit(&f, 1), mru_hit(&f)));
        assert!(close(banked_mru_miss(4, 1), mru_miss(4)));
    }

    #[test]
    fn banked_interpolates_monotonically() {
        let mut prev = f64::INFINITY;
        for b in [1u32, 2, 4, 8, 16] {
            let h = banked_hit(16, b);
            assert!(h <= prev, "b={b}: {h} > {prev}");
            prev = h;
        }
        // Known value: a=8, b=2 → groups of 2, E = 1 + (0+0+1+1+2+2+3+3)/8.
        assert!(close(banked_hit(8, 2), 1.0 + 12.0 / 8.0));
        assert!(close(banked_miss(8, 3), 3.0));
    }

    #[test]
    fn banked_mru_groups_distances() {
        // f concentrated at distance 3 (0-based 2) with b=2: ceil(3/2)=2
        // group probes + 1 list probe.
        assert!(close(banked_mru_hit(&[0.0, 0.0, 1.0, 0.0], 2), 3.0));
        assert!(close(banked_mru_miss(8, 4), 3.0));
    }

    #[test]
    fn blend_is_a_convex_combination() {
        assert!(close(blend(2.0, 4.0, 0.0), 2.0));
        assert!(close(blend(2.0, 4.0, 1.0), 4.0));
        assert!(close(blend(2.0, 4.0, 0.5), 3.0));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn mru_hit_rejects_unnormalized_f() {
        mru_hit(&[0.5, 0.1]);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn blend_rejects_bad_ratio() {
        blend(1.0, 2.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn partial_k_rejects_bad_subsets() {
        partial_k(16, 8, 3);
    }
}
