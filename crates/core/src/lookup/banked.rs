//! Banked serial implementations: the `b×t`-wide middle ground.
//!
//! The paper's §1 notes that "implementations using tag widths of `b×t`
//! (`1 < b < a`) are possible and can result in intermediate costs and
//! performance, but are not considered here." This module considers them:
//! a `b×t`-bit-wide tag memory with `b` comparators reads and compares
//! `b` stored tags per probe, so a set of `a` ways is searched in groups
//! of `b` — `⌈a/b⌉` probes on a miss instead of `a`.

use crate::lookup::{Lookup, LookupStrategy};
use crate::observe::ProbeObserver;
use crate::set_view::SetView;

/// The order in which a [`Banked`] lookup visits way groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanOrder {
    /// Fixed frame order: group `g` covers ways `[g·b, (g+1)·b)`.
    /// `b = 1` is exactly the naive scheme; `b = a` is the traditional
    /// parallel implementation.
    Frame,
    /// Most-recently-used order: one extra probe reads the per-set MRU
    /// list, then ways are visited `b` at a time from most- to
    /// least-recently used. `b = 1` is exactly the MRU scheme.
    Mru,
}

impl std::fmt::Display for ScanOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanOrder::Frame => f.write_str("frame"),
            ScanOrder::Mru => f.write_str("mru"),
        }
    }
}

/// A banked serial lookup: `b` tags read and compared per probe.
///
/// Cost model: a hit in the `g`-th group visited (0-based) costs `g + 1`
/// probes (plus one for the MRU-list read under [`ScanOrder::Mru`]);
/// a miss visits every group. A one-way set is a direct-mapped lookup.
///
/// # Example
///
/// ```
/// use seta_core::lookup::{Banked, LookupStrategy, ScanOrder};
/// use seta_core::SetView;
///
/// let view = SetView::from_parts(&[5, 6, 7, 8], &[true; 4], &[0, 1, 2, 3]);
/// let two_banks = Banked::new(2, ScanOrder::Frame);
/// assert_eq!(two_banks.lookup(&view, 7).probes, 2); // ways {5,6} then {7,8}
/// assert_eq!(two_banks.lookup(&view, 9).probes, 2); // miss: both groups
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Banked {
    banks: u32,
    order: ScanOrder,
}

impl Banked {
    /// Creates a lookup with `b` banks (tags compared per probe).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: u32, order: ScanOrder) -> Self {
        assert!(banks >= 1, "at least one bank is required");
        Banked { banks, order }
    }

    /// Tags compared per probe.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// The scan order.
    pub fn order(&self) -> ScanOrder {
        self.order
    }

    fn scan<I, P>(&self, view: &SetView, tag: u64, ways: I, base_probes: u32, obs: &mut P) -> Lookup
    where
        I: Iterator<Item = u8>,
        P: ProbeObserver + ?Sized,
    {
        let total = view.ways() as u32;
        let mut probes = base_probes;
        for (visited, w) in ways.enumerate() {
            let visited = visited as u32;
            if visited % self.banks == 0 {
                probes += 1;
                obs.group_probe(visited / self.banks, self.banks.min(total - visited) as u8);
            }
            if view.is_valid(w as usize) && view.tag(w as usize) == tag {
                return Lookup {
                    hit_way: Some(w),
                    probes,
                };
            }
        }
        Lookup {
            hit_way: None,
            probes,
        }
    }

    fn search<P: ProbeObserver + ?Sized>(&self, view: &SetView, tag: u64, obs: &mut P) -> Lookup {
        if view.ways() == 1 {
            obs.tag_probe(0);
            return Lookup {
                hit_way: view.matching_way(tag),
                probes: 1,
            };
        }
        match self.order {
            ScanOrder::Frame => self.scan(view, tag, 0..view.ways() as u8, 0, obs),
            ScanOrder::Mru => {
                obs.mru_list_read();
                self.scan(view, tag, view.order().iter().copied(), 1, obs)
            }
        }
    }
}

impl LookupStrategy for Banked {
    // `(total + b - 1) / b` beats `div_ceil` here: the bench guard
    // measures ~5 ns/access more for the div_ceil form on the miss path
    // (its extra remainder + branch defeats the single-division codegen).
    #[allow(clippy::manual_div_ceil)]
    #[inline]
    fn lookup(&self, view: &SetView, tag: u64) -> Lookup {
        // Fast path on the whole-set equality bitmask: a frame-order scan
        // reduces to ctz/division, an MRU-order scan to the first order
        // entry whose mask bit is set. `search` stays as the scalar
        // reference behind `lookup_observed`.
        let total = view.ways() as u32;
        if total == 1 {
            return Lookup {
                hit_way: view.matching_way(tag),
                probes: 1,
            };
        }
        let m = view.eq_mask(tag);
        let b = self.banks;
        match self.order {
            ScanOrder::Frame => {
                if m == 0 {
                    Lookup {
                        hit_way: None,
                        probes: (total + b - 1) / b,
                    }
                } else {
                    let w = m.trailing_zeros();
                    Lookup {
                        hit_way: Some(w as u8),
                        probes: w / b + 1,
                    }
                }
            }
            ScanOrder::Mru => {
                let mut result = Lookup {
                    hit_way: None,
                    probes: 1 + (total + b - 1) / b,
                };
                if m != 0 {
                    for (visited, &w) in view.order().iter().enumerate() {
                        if (m >> w) & 1 != 0 {
                            result = Lookup {
                                hit_way: Some(w),
                                probes: 1 + visited as u32 / b + 1,
                            };
                            break;
                        }
                    }
                }
                result
            }
        }
    }

    fn lookup_observed(&self, view: &SetView, tag: u64, obs: &mut dyn ProbeObserver) -> Lookup {
        self.search(view, tag, obs)
    }

    fn name(&self) -> String {
        format!("banked[b={},{}]", self.banks, self.order)
    }

    fn kind_name(&self) -> &'static str {
        "banked"
    }

    fn kind(&self) -> Option<crate::lookup::StrategyKind> {
        Some(crate::lookup::StrategyKind::Banked(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{Mru, Naive, Traditional};

    fn view() -> SetView {
        SetView::from_parts(
            &[10, 11, 12, 13, 14, 15, 16, 17],
            &[true; 8],
            &[7, 6, 5, 4, 3, 2, 1, 0],
        )
    }

    #[test]
    fn one_bank_frame_is_naive() {
        let v = view();
        let banked = Banked::new(1, ScanOrder::Frame);
        for tag in 9u64..19 {
            assert_eq!(banked.lookup(&v, tag), Naive.lookup(&v, tag), "tag {tag}");
        }
    }

    #[test]
    fn full_banks_frame_is_traditional() {
        let v = view();
        let banked = Banked::new(8, ScanOrder::Frame);
        for tag in 9u64..19 {
            assert_eq!(
                banked.lookup(&v, tag),
                Traditional.lookup(&v, tag),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn one_bank_mru_is_mru() {
        let v = view();
        let banked = Banked::new(1, ScanOrder::Mru);
        for tag in 9u64..19 {
            assert_eq!(
                banked.lookup(&v, tag),
                Mru::full().lookup(&v, tag),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn frame_groups_cost_by_group_index() {
        let v = view();
        let b2 = Banked::new(2, ScanOrder::Frame);
        // Ways 0-1 in probe 1, ways 2-3 in probe 2, etc.
        assert_eq!(b2.lookup(&v, 10).probes, 1);
        assert_eq!(b2.lookup(&v, 11).probes, 1);
        assert_eq!(b2.lookup(&v, 12).probes, 2);
        assert_eq!(b2.lookup(&v, 15).probes, 3);
        assert_eq!(b2.lookup(&v, 17).probes, 4);
        assert_eq!(b2.lookup(&v, 99).probes, 4);
    }

    #[test]
    fn mru_groups_follow_recency() {
        let v = view(); // MRU order 7,6,5,4,3,2,1,0
        let b4 = Banked::new(4, ScanOrder::Mru);
        // Way 7 is MRU: 1 list probe + 1 group probe.
        assert_eq!(b4.lookup(&v, 17).probes, 2);
        assert_eq!(b4.lookup(&v, 14).probes, 2); // way 4, still first group
        assert_eq!(b4.lookup(&v, 13).probes, 3); // way 3, second group
        assert_eq!(b4.lookup(&v, 99).probes, 3); // miss: list + 2 groups
    }

    #[test]
    fn uneven_group_sizes_round_up() {
        // 8 ways, 3 banks: groups of 3, 3, 2 → 3 probes on a miss.
        let v = view();
        let b3 = Banked::new(3, ScanOrder::Frame);
        assert_eq!(b3.lookup(&v, 99).probes, 3);
        assert_eq!(b3.lookup(&v, 16).probes, 3); // way 6 in the last group
    }

    #[test]
    fn one_way_set_is_direct_mapped() {
        let v = SetView::from_parts(&[3], &[true], &[0]);
        for order in [ScanOrder::Frame, ScanOrder::Mru] {
            let b = Banked::new(2, order);
            assert_eq!(b.lookup(&v, 3).probes, 1);
            assert_eq!(b.lookup(&v, 4).probes, 1);
        }
    }

    #[test]
    fn more_banks_never_cost_more() {
        let v = view();
        for tag in 9u64..19 {
            for order in [ScanOrder::Frame, ScanOrder::Mru] {
                let mut prev = u32::MAX;
                for b in [1u32, 2, 4, 8] {
                    let probes = Banked::new(b, order).lookup(&v, tag).probes;
                    assert!(probes <= prev, "b={b} {order} tag={tag}");
                    prev = probes;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        Banked::new(0, ScanOrder::Frame);
    }

    #[test]
    fn name_encodes_configuration() {
        assert_eq!(Banked::new(2, ScanOrder::Mru).name(), "banked[b=2,mru]");
    }
}
