//! The MRU-ordered serial implementation.

use crate::lookup::{Lookup, LookupStrategy};
use crate::observe::ProbeObserver;
use crate::set_view::SetView;

/// The MRU serial implementation (§2.1 of the paper): one probe reads the
/// per-set MRU list, then stored tags are scanned serially from
/// most-recently-used to least-recently-used. Temporal locality makes early
/// list positions far more likely to hit, so hits average well under a
/// frame-order scan; misses cost `a + 1` probes — one worse than naive,
/// because the list was consulted uselessly.
///
/// [`Mru::truncated`] models the paper's reduced MRU lists (Figure 5): only
/// the first `len` list entries are stored; the rest of the set is then
/// scanned in arbitrary (frame) order. Keeping a short list cuts the MRU
/// memory while staying close to full-list performance as long as `len`
/// grows linearly with associativity.
///
/// A one-way set is a direct-mapped lookup: one probe, no list.
///
/// # Example
///
/// ```
/// use seta_core::lookup::{LookupStrategy, Mru};
/// use seta_core::SetView;
///
/// // Way 2 is the MRU block.
/// let view = SetView::from_parts(&[5, 6, 7, 8], &[true; 4], &[2, 0, 3, 1]);
/// let r = Mru::full().lookup(&view, 7);
/// assert_eq!(r.probes, 2); // 1 for the list + 1 probe found it first
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mru {
    /// Number of MRU-list entries kept; `None` means the full list.
    list_len: Option<usize>,
}

impl Mru {
    /// The full-list variant (what an LRU cache gets for free).
    pub fn full() -> Self {
        Mru { list_len: None }
    }

    /// A reduced list of `len` entries; the remainder of the set is scanned
    /// in frame order after the list is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero (a zero-length list is the naive scheme —
    /// use [`Naive`](crate::lookup::Naive) instead).
    pub fn truncated(len: usize) -> Self {
        assert!(len > 0, "a zero-length MRU list is the naive scheme");
        Mru {
            list_len: Some(len),
        }
    }

    /// The configured list length, `None` for full.
    pub fn list_len(&self) -> Option<usize> {
        self.list_len
    }

    /// The search order for a view: list entries first, then unlisted ways
    /// in frame order.
    fn search_order<'a>(&self, view: &'a SetView) -> impl Iterator<Item = u8> + 'a {
        let listed = self.list_len.unwrap_or(view.ways()).min(view.ways());
        let head = view.order()[..listed].iter().copied();
        let order = view.order();
        let tail = (0..view.ways() as u8).filter(move |w| !order[..listed].contains(w));
        head.chain(tail)
    }

    fn search<P: ProbeObserver + ?Sized>(&self, view: &SetView, tag: u64, obs: &mut P) -> Lookup {
        if view.ways() == 1 {
            // Direct-mapped: no list, single compare.
            obs.tag_probe(0);
            return Lookup {
                hit_way: view.matching_way(tag),
                probes: 1,
            };
        }
        let mut probes = 1; // reading the MRU list
        obs.mru_list_read();
        for w in self.search_order(view) {
            probes += 1;
            obs.tag_probe(w);
            if view.is_valid(w as usize) && view.tag(w as usize) == tag {
                return Lookup {
                    hit_way: Some(w),
                    probes,
                };
            }
        }
        Lookup {
            hit_way: None,
            probes,
        }
    }
}

impl LookupStrategy for Mru {
    fn lookup(&self, view: &SetView, tag: u64) -> Lookup {
        // Branchless fast path: one whole-set equality bitmask, then the
        // scan position falls out of mask arithmetic — the listed prefix
        // is walked for a position, the unlisted tail's position is the
        // hit's rank among unlisted ways. `search` stays as the scalar
        // reference behind `lookup_observed`.
        let ways = view.ways();
        if ways == 1 {
            return Lookup {
                hit_way: view.matching_way(tag),
                probes: 1,
            };
        }
        let m = view.eq_mask(tag);
        if m == 0 {
            return Lookup {
                hit_way: None,
                probes: ways as u32 + 1,
            };
        }
        let order = view.order();
        let listed = self.list_len.unwrap_or(ways).min(ways);
        // Listed hits return as soon as they are found — temporal locality
        // puts most hits at the first list positions, so this loop usually
        // runs once or twice. The prefix mask is only consulted by the
        // tail rank below, which is only reached when the loop completed
        // without a hit, so breaking early never leaves it incomplete.
        let mut prefix = 0u32;
        for (pos, &w) in order[..listed].iter().enumerate() {
            if (m >> w) & 1 != 0 {
                return Lookup {
                    hit_way: Some(w),
                    probes: 1 + pos as u32 + 1,
                };
            }
            prefix |= 1 << w;
        }
        // The hit is in the unlisted tail, which is scanned in ascending
        // frame order after the `listed` list entries.
        let w = (m & !prefix).trailing_zeros();
        let full = u32::MAX >> (32 - ways as u32);
        let unlisted_before = (!prefix & full & ((1u32 << w) - 1)).count_ones();
        Lookup {
            hit_way: Some(w as u8),
            probes: 1 + listed as u32 + unlisted_before + 1,
        }
    }

    fn lookup_observed(&self, view: &SetView, tag: u64, obs: &mut dyn ProbeObserver) -> Lookup {
        self.search(view, tag, obs)
    }

    fn name(&self) -> String {
        match self.list_len {
            None => "mru".into(),
            Some(l) => format!("mru[{l}]"),
        }
    }

    fn kind_name(&self) -> &'static str {
        "mru"
    }

    fn kind(&self) -> Option<crate::lookup::StrategyKind> {
        Some(crate::lookup::StrategyKind::Mru(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> SetView {
        // tags per way: w0=10, w1=11, w2=12, w3=13; MRU order 2,0,3,1.
        SetView::from_parts(&[10, 11, 12, 13], &[true; 4], &[2, 0, 3, 1])
    }

    #[test]
    fn full_list_probes_follow_mru_distance() {
        let v = view();
        // distance 0 (way 2): 1 list + 1 = 2 probes, etc.
        assert_eq!(Mru::full().lookup(&v, 12).probes, 2);
        assert_eq!(Mru::full().lookup(&v, 10).probes, 3);
        assert_eq!(Mru::full().lookup(&v, 13).probes, 4);
        assert_eq!(Mru::full().lookup(&v, 11).probes, 5);
    }

    #[test]
    fn miss_costs_a_plus_one() {
        let v = view();
        let r = Mru::full().lookup(&v, 99);
        assert_eq!(r.hit_way, None);
        assert_eq!(r.probes, 5);
    }

    #[test]
    fn truncated_list_scans_tail_in_frame_order() {
        let v = view();
        // List of 1: search order = [2] then frames 0,1,3.
        let m = Mru::truncated(1);
        assert_eq!(m.lookup(&v, 12).probes, 2); // in the list
        assert_eq!(m.lookup(&v, 10).probes, 3); // first tail entry (way 0)
        assert_eq!(m.lookup(&v, 11).probes, 4); // way 1
        assert_eq!(m.lookup(&v, 13).probes, 5); // way 3
        assert_eq!(m.lookup(&v, 99).probes, 5); // miss
    }

    #[test]
    fn truncated_longer_than_set_acts_full() {
        let v = view();
        let m = Mru::truncated(16);
        for tag in [10u64, 11, 12, 13, 99] {
            assert_eq!(m.lookup(&v, tag), Mru::full().lookup(&v, tag));
        }
    }

    #[test]
    fn one_way_set_is_direct_mapped() {
        let v = SetView::from_parts(&[3], &[true], &[0]);
        assert_eq!(Mru::full().lookup(&v, 3).probes, 1);
        assert_eq!(Mru::full().lookup(&v, 4).probes, 1);
    }

    #[test]
    fn finds_blocks_regardless_of_list_length() {
        let v = view();
        for len in 1..=4 {
            for (way, tag) in [(0u8, 10u64), (1, 11), (2, 12), (3, 13)] {
                let r = Mru::truncated(len).lookup(&v, tag);
                assert_eq!(r.hit_way, Some(way), "len={len} tag={tag}");
            }
        }
    }

    #[test]
    fn invalid_frames_still_cost_probes() {
        let v = SetView::from_parts(&[10, 11], &[false, true], &[0, 1]);
        // Search order [0, 1]: probe invalid way 0, then hit way 1.
        let r = Mru::full().lookup(&v, 11);
        assert_eq!(r.probes, 3);
    }

    #[test]
    #[should_panic(expected = "naive")]
    fn zero_length_list_panics() {
        Mru::truncated(0);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Mru::full().name(), "mru");
        assert_eq!(Mru::truncated(2).name(), "mru[2]");
    }
}
