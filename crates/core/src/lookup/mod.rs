//! The four implementations of set-associative lookup.
//!
//! Each strategy prices a search of one cache set in **probes** — the
//! paper's cost unit, one tag-memory read-and-compare. All strategies find
//! exactly the same block (hit/miss behaviour is a property of cache
//! *contents*, not of the lookup implementation); they differ only in how
//! many probes the search costs:
//!
//! * [`Traditional`] — all tags read and compared in parallel: 1 probe
//!   always, but needs an `a×t`-wide tag memory and `a` comparators.
//! * [`Naive`] — direct-mapped-style hardware, tags scanned serially in
//!   frame order.
//! * [`Mru`] — tags scanned serially in most-recently-used order, after one
//!   extra probe to read the per-set MRU list. Supports the paper's
//!   reduced-length MRU lists (Figure 5).
//! * [`PartialCompare`] — one probe compares a k-bit slice of every tag at
//!   once; only tags that pass are full-compared serially. Supports
//!   subsets and tag transformations (§2.2, Figure 6).
//! * [`Banked`] — the `b×t`-wide middle ground the paper's §1 mentions but
//!   does not evaluate: `b` tags read and compared per probe, in frame or
//!   MRU order.
//!
//! A one-way set is a direct-mapped lookup; every strategy prices it at
//! one probe, which is where the curves of Figure 3 converge.

mod banked;
mod mru;
mod naive;
mod partial;
mod traditional;

pub use banked::{Banked, ScanOrder};
pub use mru::Mru;
pub use naive::Naive;
pub use partial::{PartialCompare, TransformKind};
pub use traditional::Traditional;

use crate::observe::ProbeObserver;
use crate::set_view::SetView;

/// Result of pricing one lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// The way where the block was found, or `None` for a miss.
    pub hit_way: Option<u8>,
    /// Number of probes the search cost.
    pub probes: u32,
}

impl Lookup {
    /// Whether the lookup hit.
    pub fn is_hit(&self) -> bool {
        self.hit_way.is_some()
    }
}

/// An implementation of set-associative lookup.
pub trait LookupStrategy {
    /// Searches `view` for `tag`, returning where it was found and how many
    /// probes the search cost.
    ///
    /// `tag` is the full-width incoming tag; strategies that model narrow
    /// stored tags (e.g. [`PartialCompare`]) extract the bits they need.
    fn lookup(&self, view: &SetView, tag: u64) -> Lookup;

    /// [`lookup`](Self::lookup) with a [`ProbeObserver`] receiving the
    /// micro-events behind the probe count (ways scanned, MRU-list reads,
    /// partial-compare candidates and false matches).
    ///
    /// Returns exactly what `lookup` returns: observation never changes
    /// the search. The default implementation forwards to `lookup` and
    /// emits nothing; every strategy in this module overrides it with the
    /// shared search code, so the un-instrumented `lookup` path
    /// monomorphizes the observer hooks away while this entry point pays
    /// one dynamic dispatch per event.
    fn lookup_observed(&self, view: &SetView, tag: u64, _obs: &mut dyn ProbeObserver) -> Lookup {
        self.lookup(view, tag)
    }

    /// Short name for reports, e.g. `"mru"` or `"partial"`.
    fn name(&self) -> String;

    /// The strategy's kind as a static string (`"mru"`, `"partial"`, …) —
    /// the allocation-free form of [`name`](Self::name) for hot report and
    /// heartbeat loops that label output per strategy per window. Unlike
    /// `name`, it omits per-instance configuration.
    fn kind_name(&self) -> &'static str {
        "custom"
    }

    /// The closed-enum form of this strategy, if it is one of the built-in
    /// implementations. Scorer hot loops use this to dispatch statically
    /// (one match instead of a virtual call per access); external
    /// strategies return `None` and keep working through the vtable.
    fn kind(&self) -> Option<StrategyKind> {
        None
    }
}

/// The built-in lookup implementations as a closed enum.
///
/// `Box<dyn LookupStrategy>` stays the extensibility surface for CLIs and
/// experiments, but a per-access virtual call blocks inlining of the
/// branchless fast paths. Hot loops resolve each boxed strategy to its
/// `StrategyKind` once (via [`LookupStrategy::kind`]) and then dispatch
/// through one jump table whose arms inline fully.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// [`Traditional`] parallel lookup.
    Traditional(Traditional),
    /// [`Naive`] frame-order serial lookup.
    Naive(Naive),
    /// [`Mru`] serial lookup (full or truncated list).
    Mru(Mru),
    /// [`PartialCompare`] two-step lookup.
    Partial(PartialCompare),
    /// [`Banked`] grouped serial lookup.
    Banked(Banked),
}

impl StrategyKind {
    /// Statically dispatched [`LookupStrategy::lookup`].
    #[inline]
    pub fn lookup(&self, view: &SetView, tag: u64) -> Lookup {
        match self {
            StrategyKind::Traditional(s) => s.lookup(view, tag),
            StrategyKind::Naive(s) => s.lookup(view, tag),
            StrategyKind::Mru(s) => s.lookup(view, tag),
            StrategyKind::Partial(s) => s.lookup(view, tag),
            StrategyKind::Banked(s) => s.lookup(view, tag),
        }
    }

    /// Statically dispatched [`LookupStrategy::lookup_observed`].
    #[inline]
    pub fn lookup_observed(&self, view: &SetView, tag: u64, obs: &mut dyn ProbeObserver) -> Lookup {
        match self {
            StrategyKind::Traditional(s) => s.lookup_observed(view, tag, obs),
            StrategyKind::Naive(s) => s.lookup_observed(view, tag, obs),
            StrategyKind::Mru(s) => s.lookup_observed(view, tag, obs),
            StrategyKind::Partial(s) => s.lookup_observed(view, tag, obs),
            StrategyKind::Banked(s) => s.lookup_observed(view, tag, obs),
        }
    }

    /// Statically dispatched [`LookupStrategy::name`].
    pub fn name(&self) -> String {
        match self {
            StrategyKind::Traditional(s) => s.name(),
            StrategyKind::Naive(s) => s.name(),
            StrategyKind::Mru(s) => s.name(),
            StrategyKind::Partial(s) => s.name(),
            StrategyKind::Banked(s) => s.name(),
        }
    }

    /// Statically dispatched [`LookupStrategy::kind_name`].
    pub fn kind_name(&self) -> &'static str {
        match self {
            StrategyKind::Traditional(s) => s.kind_name(),
            StrategyKind::Naive(s) => s.kind_name(),
            StrategyKind::Mru(s) => s.kind_name(),
            StrategyKind::Partial(s) => s.kind_name(),
            StrategyKind::Banked(s) => s.kind_name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Counts every observer event; the implied probe total must equal the
    /// [`Lookup`]'s probe count for every strategy.
    #[derive(Debug, Default, PartialEq, Eq)]
    struct EventCount {
        tag_probes: u32,
        group_probes: u32,
        list_reads: u32,
        partial_probes: u32,
        candidates: u32,
        false_matches: u32,
    }

    impl EventCount {
        fn implied_probes(&self) -> u32 {
            self.tag_probes
                + self.group_probes
                + self.list_reads
                + self.partial_probes
                + self.candidates
        }
    }

    impl ProbeObserver for EventCount {
        fn tag_probe(&mut self, _way: u8) {
            self.tag_probes += 1;
        }
        fn group_probe(&mut self, _group: u32, _ways: u8) {
            self.group_probes += 1;
        }
        fn mru_list_read(&mut self) {
            self.list_reads += 1;
        }
        fn partial_probe(&mut self, _subset: u32) {
            self.partial_probes += 1;
        }
        fn partial_candidate(&mut self, _way: u8, matched: bool) {
            self.candidates += 1;
            if !matched {
                self.false_matches += 1;
            }
        }
    }

    fn all_strategies() -> Vec<Box<dyn LookupStrategy>> {
        vec![
            Box::new(Traditional),
            Box::new(Naive),
            Box::new(Mru::full()),
            Box::new(Mru::truncated(2)),
            Box::new(PartialCompare::new(16, 1, TransformKind::XorFold)),
            Box::new(PartialCompare::new(16, 2, TransformKind::Improved)),
            Box::new(PartialCompare::new(32, 1, TransformKind::None)),
            Box::new(PartialCompare::new(16, 1, TransformKind::Swap)),
            Box::new(Banked::new(2, ScanOrder::Frame)),
            Box::new(Banked::new(4, ScanOrder::Mru)),
        ]
    }

    proptest! {
        /// Every strategy agrees with ground truth on WHERE the block is —
        /// they only differ in probes.
        #[test]
        fn strategies_agree_with_oracle(
            tags in proptest::collection::vec(0u64..0x10000, 8),
            valid in proptest::collection::vec(any::<bool>(), 8),
            probe_tag in 0u64..0x10000,
            seed in any::<u64>(),
        ) {
            // Derive a pseudo-random permutation for the MRU order.
            let mut order: Vec<u8> = (0..8).collect();
            let mut s = seed;
            for i in (1..8usize).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (s >> 33) as usize % (i + 1));
            }
            // Make tags unique per set (cache invariant).
            let mut tags = tags;
            for (i, t) in tags.iter_mut().enumerate() {
                *t = (*t << 3) | i as u64;
            }
            let view = SetView::from_parts(&tags, &valid, &order);
            let oracle = view.matching_way(probe_tag);
            for strat in all_strategies() {
                let r = strat.lookup(&view, probe_tag);
                prop_assert_eq!(
                    r.hit_way, oracle,
                    "{} disagrees with oracle", strat.name()
                );
                prop_assert!(r.probes >= 1, "{} claims a free lookup", strat.name());
            }
        }

        /// Observation is free of side effects: `lookup_observed` returns
        /// exactly what `lookup` returns, and the emitted events account
        /// for every probe charged.
        #[test]
        fn observed_lookup_matches_and_events_account_for_probes(
            tags in proptest::collection::vec(0u64..0x10000, 8),
            valid in proptest::collection::vec(any::<bool>(), 8),
            probe_tag in 0u64..0x10000,
        ) {
            let mut tags = tags;
            for (i, t) in tags.iter_mut().enumerate() {
                *t = (*t << 3) | i as u64;
            }
            let order: Vec<u8> = [5, 2, 7, 0, 3, 6, 1, 4].to_vec();
            let view = SetView::from_parts(&tags, &valid, &order);
            for strat in all_strategies() {
                let plain = strat.lookup(&view, probe_tag);
                let mut events = EventCount::default();
                let observed = strat.lookup_observed(&view, probe_tag, &mut events);
                prop_assert_eq!(plain, observed, "{} changed under observation", strat.name());
                prop_assert_eq!(
                    events.implied_probes(),
                    plain.probes,
                    "{} events {:?} do not account for the probes",
                    strat.name(),
                    events
                );
                // A hit's final candidate matched; every earlier one was false.
                if plain.is_hit() && events.candidates > 0 {
                    prop_assert_eq!(events.false_matches, events.candidates - 1);
                } else {
                    prop_assert_eq!(events.false_matches, events.candidates);
                }
            }
        }

        /// Probe counts respect the paper's per-strategy bounds.
        #[test]
        fn probe_bounds_hold(
            tags in proptest::collection::vec(0u64..0x10000, 8),
            probe_tag in 0u64..0x10000,
        ) {
            let mut tags = tags;
            for (i, t) in tags.iter_mut().enumerate() {
                *t = (*t << 3) | i as u64;
            }
            let order: Vec<u8> = (0..8).collect();
            let view = SetView::from_parts(&tags, &[true; 8], &order);
            let a = 8u32;

            let r = Traditional.lookup(&view, probe_tag);
            prop_assert_eq!(r.probes, 1);

            let r = Naive.lookup(&view, probe_tag);
            if r.is_hit() {
                prop_assert!(r.probes >= 1 && r.probes <= a);
            } else {
                prop_assert_eq!(r.probes, a);
            }

            let r = Mru::full().lookup(&view, probe_tag);
            if r.is_hit() {
                prop_assert!(r.probes >= 2 && r.probes <= a + 1);
            } else {
                prop_assert_eq!(r.probes, a + 1);
            }

            for s in [1u32, 2, 4] {
                let p = PartialCompare::new(16, s, TransformKind::Improved);
                let r = p.lookup(&view, probe_tag);
                if r.is_hit() {
                    // At least one partial probe + the matching full compare.
                    prop_assert!(r.probes >= 2, "subsets={s}");
                    prop_assert!(r.probes <= s + a, "subsets={s}");
                } else {
                    prop_assert!(r.probes >= s && r.probes <= s + a, "subsets={s}");
                }
            }
        }
    }
}
