//! The partial-compare implementation.

use crate::lookup::{Lookup, LookupStrategy};
use crate::observe::ProbeObserver;
use crate::packed::{LaneCodec, LaneSpec, LaneView};
use crate::set_view::SetView;
use crate::transform::{tag_mask, Improved, TagTransform, XorFold};

/// Which tag transformation a [`PartialCompare`] applies (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// Store tags untransformed (Figure 6's "None" line).
    None,
    /// XOR the low-order field into every other field — the simple,
    /// self-inverse transform of §2.2 (Figure 6's "XOR" line).
    XorFold,
    /// The improved lower-triangular transform (Figure 6's "New" line).
    Improved,
    /// No transform, but every slot's partial compare uses the low-order
    /// `k` bits of the tag (the bit-*swap* scheme the paper mentions as
    /// effective but costlier to implement).
    Swap,
}

impl std::fmt::Display for TransformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TransformKind::None => "none",
            TransformKind::XorFold => "xor",
            TransformKind::Improved => "improved",
            TransformKind::Swap => "swap",
        };
        f.write_str(name)
    }
}

/// The partial-compare implementation (§2.2 of the paper).
///
/// Step one reads `k = ⌊t·s/a⌋` bits from each of the `a/s` stored tags of
/// a subset — slot `i` contributes bit-slice `i` of its tag — and compares
/// them against the corresponding slices of the incoming tag in a single
/// probe. Step two serially full-compares only the tags that passed. With
/// `s > 1` subsets the set is partitioned and the two-step sequence runs
/// per subset, trading extra step-one probes for wider (more selective)
/// partial compares.
///
/// Because each slot compares a *different* bit-slice, low-entropy high
/// tag bits cause false matches; the configured [`TransformKind`]
/// randomizes stored tags to counter that.
///
/// Full compares are modelled as exact (a real cache's tags uniquely
/// identify blocks within a set), so the strategy always finds the same
/// block as ground truth; only its probe count varies.
///
/// A one-way set is a direct-mapped lookup: one probe.
///
/// # Example
///
/// ```
/// use seta_core::lookup::{LookupStrategy, PartialCompare, TransformKind};
/// use seta_core::SetView;
///
/// let p = PartialCompare::new(16, 1, TransformKind::None);
/// // Slot i compares nibble i: only way 2's third nibble matches 0x3333.
/// let view = SetView::from_parts(
///     &[0x1111, 0x2222, 0x3333, 0x4444], &[true; 4], &[0, 1, 2, 3]);
/// let r = p.lookup(&view, 0x3333);
/// assert_eq!(r.hit_way, Some(2));
/// assert_eq!(r.probes, 2); // 1 partial probe + 1 full compare
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialCompare {
    tag_bits: u32,
    subsets: u32,
    transform: TransformKind,
}

impl PartialCompare {
    /// Creates the strategy for `t`-bit stored tags, `s` subsets, and the
    /// given transform.
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits` is 0 or exceeds 64, or `subsets` is 0.
    pub fn new(tag_bits: u32, subsets: u32, transform: TransformKind) -> Self {
        assert!(
            (1..=64).contains(&tag_bits),
            "tag width {tag_bits} out of 1..=64"
        );
        assert!(subsets >= 1, "at least one subset is required");
        PartialCompare {
            tag_bits,
            subsets,
            transform,
        }
    }

    /// Stored-tag width `t`.
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Number of subsets `s`.
    pub fn subsets(&self) -> u32 {
        self.subsets
    }

    /// The transform in force.
    pub fn transform(&self) -> TransformKind {
        self.transform
    }

    /// The partial-compare width `k = ⌊t·s/a⌋` for an `a`-way set.
    ///
    /// # Panics
    ///
    /// Panics if `subsets` does not divide `ways` or if the resulting `k`
    /// would be zero (tag too narrow for that many concurrent compares).
    pub fn k_for(&self, ways: usize) -> u32 {
        assert!(
            (ways as u32) % self.subsets == 0,
            "{} subsets do not divide {} ways",
            self.subsets,
            ways
        );
        let per_subset = ways as u32 / self.subsets;
        let k = self.tag_bits / per_subset;
        assert!(
            k >= 1,
            "{}-bit tags cannot supply {} concurrent partial compares",
            self.tag_bits,
            per_subset
        );
        k
    }

    fn transformed(&self, tag: u64, k: u32) -> u64 {
        let masked = tag & crate::transform::tag_mask(self.tag_bits);
        match self.transform {
            TransformKind::None | TransformKind::Swap => masked,
            TransformKind::XorFold => XorFold::new(self.tag_bits, k).forward(masked),
            TransformKind::Improved => Improved::new(self.tag_bits, k).forward(masked),
        }
    }

    /// The k-bit slice slot `slot` contributes.
    fn slice(&self, transformed_tag: u64, slot: u32, k: u32) -> u64 {
        let shift = match self.transform {
            TransformKind::Swap => 0,
            _ => slot * k,
        };
        (transformed_tag >> shift) & tag_mask(k)
    }

    fn search<P: ProbeObserver + ?Sized>(&self, view: &SetView, tag: u64, obs: &mut P) -> Lookup {
        let ways = view.ways();
        if ways == 1 {
            obs.tag_probe(0);
            return Lookup {
                hit_way: view.matching_way(tag),
                probes: 1,
            };
        }
        let k = self.k_for(ways);
        let per_subset = ways / self.subsets as usize;
        let incoming = self.transformed(tag, k);

        let mut probes = 0u32;
        let mut hit_way = None;
        'subsets: for subset in 0..self.subsets as usize {
            probes += 1; // step one: the concurrent partial compare
            obs.partial_probe(subset as u32);
            for slot in 0..per_subset {
                let w = subset * per_subset + slot;
                if !view.is_valid(w) {
                    continue;
                }
                let stored = self.transformed(view.tag(w), k);
                if self.slice(stored, slot as u32, k) != self.slice(incoming, slot as u32, k) {
                    continue; // failed the partial compare: never examined again
                }
                // Step two: serial full compare of this partial matcher.
                probes += 1;
                let matched = view.tag(w) == tag;
                obs.partial_candidate(w as u8, matched);
                if matched {
                    hit_way = Some(w as u8);
                    break 'subsets;
                }
            }
        }
        Lookup { hit_way, probes }
    }

    /// The packed-lane geometry this strategy induces on an `a`-way cache,
    /// if one exists (see [`LaneSpec::try_new`]). A cache that maintains
    /// [`PackedLanes`](crate::PackedLanes) under this spec lets
    /// [`lookup_packed`](Self::lookup_packed) skip the per-lookup packing.
    pub fn lane_spec(&self, ways: usize) -> Option<LaneSpec> {
        LaneSpec::try_new(self.tag_bits, self.subsets, self.transform, ways as u32)
    }

    /// Probe- and result-identical to `search`, evaluated with SWAR: every
    /// slot's step-one slice compare lands in one XOR + zero-field detect
    /// per subset (see [`crate::packed`]). The lane words are packed here
    /// from the view (still branch-free per way); callers that maintain
    /// lanes incrementally use [`lookup_packed`](Self::lookup_packed) and
    /// skip both the packing and the per-lookup codec construction.
    fn lookup_swar(&self, view: &SetView, tag: u64) -> Lookup {
        let ways = view.ways();
        if ways == 1 {
            return Lookup {
                hit_way: view.matching_way(tag),
                probes: 1,
            };
        }
        let k = self.k_for(ways); // same panics as the scalar path
        let n = ways as u32 / self.subsets;
        let codec = LaneCodec::new(self.tag_bits, k, n, self.transform);
        let tags = view.tags();
        let mut words = [0u64; crate::set_view::MAX_ASSOC];
        for (subset, word) in words[..self.subsets as usize].iter_mut().enumerate() {
            let base = subset * n as usize;
            let mut packed = 0u64;
            for slot in 0..n as usize {
                packed |= codec.store_field(tags[base + slot], slot as u32);
            }
            *word = packed;
        }
        codec.swar_lookup(
            &words[..self.subsets as usize],
            tags,
            view.valid_mask(),
            tag,
        )
    }

    /// [`lookup`](LookupStrategy::lookup) against lane words a cache keeps
    /// incrementally (see [`crate::PackedLanes`]) — the packing loop
    /// disappears entirely from the per-access cost.
    ///
    /// The caller must pass lanes whose [`spec`](LaneView::spec) equals
    /// [`lane_spec`](Self::lane_spec) for this view's associativity;
    /// debug builds assert it, and assert the words are coherent with the
    /// view's tags.
    #[inline]
    pub fn lookup_packed(&self, view: &SetView, lanes: &LaneView<'_>, tag: u64) -> Lookup {
        debug_assert_eq!(
            Some(lanes.spec()),
            self.lane_spec(view.ways()),
            "lane spec does not match strategy/view geometry"
        );
        #[cfg(debug_assertions)]
        {
            let codec = lanes.spec().codec();
            let n = lanes.spec().per_subset() as usize;
            for (subset, &word) in lanes.words().iter().enumerate() {
                let mut expect = 0u64;
                for slot in 0..n {
                    expect |= codec.store_field(view.tag(subset * n + slot), slot as u32);
                }
                debug_assert_eq!(
                    word, expect,
                    "lane word {subset} is stale for this view's tags"
                );
            }
        }
        lanes
            .codec
            .swar_lookup(lanes.words, view.tags(), view.valid_mask(), tag)
    }
}

impl LookupStrategy for PartialCompare {
    #[inline]
    fn lookup(&self, view: &SetView, tag: u64) -> Lookup {
        self.lookup_swar(view, tag)
    }

    fn lookup_observed(&self, view: &SetView, tag: u64, obs: &mut dyn ProbeObserver) -> Lookup {
        self.search(view, tag, obs)
    }

    fn name(&self) -> String {
        format!(
            "partial[t={},s={},{}]",
            self.tag_bits, self.subsets, self.transform
        )
    }

    fn kind_name(&self) -> &'static str {
        "partial"
    }

    fn kind(&self) -> Option<crate::lookup::StrategyKind> {
        Some(crate::lookup::StrategyKind::Partial(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(subsets: u32) -> PartialCompare {
        PartialCompare::new(16, subsets, TransformKind::None)
    }

    #[test]
    fn k_matches_paper_formula() {
        // t=16: a=4,s=1 → k=4; a=8,s=1 → k=2; a=8,s=2 → k=4; a=16,s=4 → k=4.
        assert_eq!(plain(1).k_for(4), 4);
        assert_eq!(plain(1).k_for(8), 2);
        assert_eq!(plain(2).k_for(8), 4);
        assert_eq!(plain(4).k_for(16), 4);
        // t=32: a=16,s=2 → k=4; a=4,s=1 → k=8.
        let wide = PartialCompare::new(32, 2, TransformKind::None);
        assert_eq!(wide.k_for(16), 4);
        let wide = PartialCompare::new(32, 1, TransformKind::None);
        assert_eq!(wide.k_for(4), 8);
    }

    #[test]
    fn hit_with_no_false_matches_costs_two() {
        let view =
            SetView::from_parts(&[0x1111, 0x2222, 0x3333, 0x4444], &[true; 4], &[0, 1, 2, 3]);
        let r = plain(1).lookup(&view, 0x3333);
        assert_eq!(r.hit_way, Some(2));
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn false_matches_cost_extra_full_compares() {
        // Incoming 0x4321: slot 0 reads nibble 0, slot 1 nibble 1, etc.
        // Every stored tag partially matches its own slot.
        let view =
            SetView::from_parts(&[0x0001, 0x0020, 0x0300, 0x4000], &[true; 4], &[0, 1, 2, 3]);
        let r = plain(1).lookup(&view, 0x4321);
        assert_eq!(r.hit_way, None);
        assert_eq!(r.probes, 1 + 4, "one partial probe + four false matches");
    }

    #[test]
    fn miss_with_no_partial_matches_costs_one_per_subset() {
        let view =
            SetView::from_parts(&[0x1111, 0x2222, 0x3333, 0x4444], &[true; 4], &[0, 1, 2, 3]);
        assert_eq!(plain(1).lookup(&view, 0x5555).probes, 1);
        assert_eq!(plain(2).lookup(&view, 0x5555).probes, 2);
        assert_eq!(plain(4).lookup(&view, 0x5555).probes, 4);
    }

    #[test]
    fn search_stops_at_the_hit_subset() {
        // 4 ways, 2 subsets: hit in the first subset never probes the second.
        let view =
            SetView::from_parts(&[0x00AA, 0x00BB, 0x00CC, 0x00DD], &[true; 4], &[0, 1, 2, 3]);
        // k = 16*2/4 = 8. Subset 0 slots use bytes 0 and 1.
        let r = plain(2).lookup(&view, 0x00AA);
        assert_eq!(r.hit_way, Some(0));
        assert_eq!(r.probes, 2); // subset-0 partial + full compare
    }

    #[test]
    fn hit_in_second_subset_pays_first_subset_probes() {
        let view =
            SetView::from_parts(&[0x00AA, 0x00BB, 0x00CC, 0x00DD], &[true; 4], &[0, 1, 2, 3]);
        let r = plain(2).lookup(&view, 0x00CC);
        assert_eq!(r.hit_way, Some(2));
        // Subset 0: partial probe (slot0: AA vs CC ✗; slot1 compares byte 1:
        // stored 0x00BB byte1=0x00, incoming byte1=0x00 ✓ → 1 false match).
        // Subset 1: partial probe + hit full compare.
        assert_eq!(r.probes, 1 + 1 + 1 + 1);
    }

    #[test]
    fn invalid_frames_never_partial_match() {
        let view = SetView::from_parts(&[0x0001, 0x0001], &[false, true], &[0, 1]);
        // k=8; slot 0 reads byte 0 (0x01 == 0x01) but way 0 is invalid.
        let r = plain(1).lookup(&view, 0x0001);
        assert_eq!(r.hit_way, Some(1));
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn swap_compares_low_bits_everywhere() {
        let p = PartialCompare::new(16, 1, TransformKind::Swap);
        // k=4 for 4 ways; all slots compare nibble 0.
        let view =
            SetView::from_parts(&[0x1235, 0x4565, 0x7895, 0x0005], &[true; 4], &[0, 1, 2, 3]);
        // Incoming ends in 5 → every way partial-matches.
        let r = p.lookup(&view, 0xAAA5);
        assert_eq!(r.probes, 1 + 4);
        // Incoming ends in 6 → nothing partial-matches.
        let r = p.lookup(&view, 0xAAA6);
        assert_eq!(r.probes, 1);
    }

    #[test]
    fn transforms_preserve_hits() {
        for kind in [
            TransformKind::None,
            TransformKind::XorFold,
            TransformKind::Improved,
            TransformKind::Swap,
        ] {
            let p = PartialCompare::new(16, 1, kind);
            let view =
                SetView::from_parts(&[0xBEE1, 0xBEE2, 0xBEE3, 0xBEE4], &[true; 4], &[0, 1, 2, 3]);
            for (w, tag) in [(0u8, 0xBEE1u64), (1, 0xBEE2), (2, 0xBEE3), (3, 0xBEE4)] {
                assert_eq!(p.lookup(&view, tag).hit_way, Some(w), "{kind}");
            }
            assert_eq!(p.lookup(&view, 0xBEE5).hit_way, None, "{kind}");
        }
    }

    #[test]
    fn xor_fold_reduces_false_matches_on_correlated_tags() {
        // Tags sharing high-order bits (the virtual-address pathology):
        // without a transform, slots 1..3 all compare identical high slices.
        let tags = [0xABC0u64, 0xABC1, 0xABC2, 0xABC3];
        let view = SetView::from_parts(&tags, &[true; 4], &[0, 1, 2, 3]);
        let incoming = 0xABC4; // same high bits, different low nibble → miss
        let none = PartialCompare::new(16, 1, TransformKind::None)
            .lookup(&view, incoming)
            .probes;
        let xor = PartialCompare::new(16, 1, TransformKind::XorFold)
            .lookup(&view, incoming)
            .probes;
        // None: slots 1-3 partial-match (identical slices) → 1 + 3 probes.
        assert_eq!(none, 4);
        // XorFold spreads the differing low nibble into every slice → no
        // false matches.
        assert_eq!(xor, 1);
    }

    #[test]
    fn one_way_set_is_direct_mapped() {
        let p = plain(1);
        let view = SetView::from_parts(&[7], &[true], &[0]);
        assert_eq!(p.lookup(&view, 7).probes, 1);
        assert_eq!(p.lookup(&view, 8).probes, 1);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn subsets_must_divide_ways() {
        let view = SetView::from_parts(&[1, 2, 3, 4, 5, 6], &[true; 6], &[0, 1, 2, 3, 4, 5]);
        plain(4).lookup(&view, 1);
    }

    #[test]
    #[should_panic(expected = "cannot supply")]
    fn too_narrow_tags_panic() {
        let p = PartialCompare::new(8, 1, TransformKind::None);
        let tags: Vec<u64> = (0..16).collect();
        let valid = vec![true; 16];
        let order: Vec<u8> = (0..16).collect();
        let view = SetView::from_parts(&tags, &valid, &order);
        p.lookup(&view, 0); // k = 8/16 = 0
    }

    #[test]
    fn name_encodes_configuration() {
        assert_eq!(
            PartialCompare::new(32, 2, TransformKind::Improved).name(),
            "partial[t=32,s=2,improved]"
        );
    }
}
