//! The traditional parallel implementation.

use crate::lookup::{Lookup, LookupStrategy};
use crate::observe::ProbeObserver;
use crate::set_view::SetView;

/// The traditional implementation: all `a` stored tags are read from an
/// `a×t`-bit-wide tag memory and compared by `a` comparators in parallel —
/// one probe whether the lookup hits or misses.
///
/// This is the expensive baseline every low-cost scheme is measured
/// against (Figure 1a of the paper).
///
/// # Example
///
/// ```
/// use seta_core::lookup::{LookupStrategy, Traditional};
/// use seta_core::SetView;
///
/// let view = SetView::from_parts(&[5, 6], &[true, true], &[0, 1]);
/// assert_eq!(Traditional.lookup(&view, 6).probes, 1);
/// assert_eq!(Traditional.lookup(&view, 7).probes, 1); // misses also cost 1
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traditional;

impl Traditional {
    fn search<P: ProbeObserver + ?Sized>(&self, view: &SetView, tag: u64, obs: &mut P) -> Lookup {
        // The whole set is read and compared in a single wide probe.
        obs.group_probe(0, view.ways() as u8);
        Lookup {
            hit_way: view.matching_way(tag),
            probes: 1,
        }
    }
}

impl LookupStrategy for Traditional {
    #[inline]
    fn lookup(&self, view: &SetView, tag: u64) -> Lookup {
        // Branchless fast path: the whole-set equality bitmask plays the
        // role of the hardware's parallel comparators; `search` stays as
        // the scalar reference behind `lookup_observed`.
        let m = view.eq_mask(tag);
        Lookup {
            hit_way: (m != 0).then(|| m.trailing_zeros() as u8),
            probes: 1,
        }
    }

    fn lookup_observed(&self, view: &SetView, tag: u64, obs: &mut dyn ProbeObserver) -> Lookup {
        self.search(view, tag, obs)
    }

    fn name(&self) -> String {
        "traditional".into()
    }

    fn kind_name(&self) -> &'static str {
        "traditional"
    }

    fn kind(&self) -> Option<crate::lookup::StrategyKind> {
        Some(crate::lookup::StrategyKind::Traditional(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_one_probe() {
        let view = SetView::from_parts(&[1, 2, 3, 4], &[true; 4], &[0, 1, 2, 3]);
        for tag in 0u64..8 {
            assert_eq!(Traditional.lookup(&view, tag).probes, 1);
        }
    }

    #[test]
    fn finds_the_right_way() {
        let view = SetView::from_parts(&[1, 2, 3, 4], &[true; 4], &[3, 2, 1, 0]);
        assert_eq!(Traditional.lookup(&view, 3).hit_way, Some(2));
        assert_eq!(Traditional.lookup(&view, 9).hit_way, None);
    }

    #[test]
    fn invalid_ways_do_not_hit() {
        let view = SetView::from_parts(&[7, 7], &[false, true], &[0, 1]);
        assert_eq!(Traditional.lookup(&view, 7).hit_way, Some(1));
    }
}
