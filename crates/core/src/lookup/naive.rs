//! The naive serial implementation.

use crate::lookup::{Lookup, LookupStrategy};
use crate::observe::ProbeObserver;
use crate::set_view::SetView;

/// The naive serial implementation (Figure 1b of the paper): the stored
/// tags of the set are read one at a time from a `t`-bit-wide tag memory,
/// in frame order, until a match is found or the set is exhausted.
///
/// On average a hit costs `(a−1)/2 + 1` probes (each resident tag is
/// equally likely to hold the block); a miss always costs `a`.
///
/// # Example
///
/// ```
/// use seta_core::lookup::{LookupStrategy, Naive};
/// use seta_core::SetView;
///
/// let view = SetView::from_parts(&[5, 6, 7, 8], &[true; 4], &[0, 1, 2, 3]);
/// assert_eq!(Naive.lookup(&view, 7).probes, 3); // ways 0, 1, 2 scanned
/// assert_eq!(Naive.lookup(&view, 9).probes, 4); // miss: all 4 scanned
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Naive;

impl Naive {
    fn search<P: ProbeObserver + ?Sized>(&self, view: &SetView, tag: u64, obs: &mut P) -> Lookup {
        for w in 0..view.ways() {
            obs.tag_probe(w as u8);
            if view.is_valid(w) && view.tag(w) == tag {
                return Lookup {
                    hit_way: Some(w as u8),
                    probes: w as u32 + 1,
                };
            }
        }
        Lookup {
            hit_way: None,
            probes: view.ways() as u32,
        }
    }
}

impl LookupStrategy for Naive {
    fn lookup(&self, view: &SetView, tag: u64) -> Lookup {
        // An early-exit frame-order scan beats a whole-set equality mask
        // here: hits cluster at low scan positions, so the serial loop
        // touches ~half the ways on average while the mask always pays
        // for all of them. The scalar `search` stays the observed
        // reference; this is the same walk minus the observer calls.
        for w in 0..view.ways() {
            if view.is_valid(w) && view.tag(w) == tag {
                return Lookup {
                    hit_way: Some(w as u8),
                    probes: w as u32 + 1,
                };
            }
        }
        Lookup {
            hit_way: None,
            probes: view.ways() as u32,
        }
    }

    fn lookup_observed(&self, view: &SetView, tag: u64, obs: &mut dyn ProbeObserver) -> Lookup {
        self.search(view, tag, obs)
    }

    fn name(&self) -> String {
        "naive".into()
    }

    fn kind_name(&self) -> &'static str {
        "naive"
    }

    fn kind(&self) -> Option<crate::lookup::StrategyKind> {
        Some(crate::lookup::StrategyKind::Naive(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_equal_scan_position() {
        let view = SetView::from_parts(&[10, 11, 12, 13], &[true; 4], &[0, 1, 2, 3]);
        for (i, tag) in [10u64, 11, 12, 13].iter().enumerate() {
            let r = Naive.lookup(&view, *tag);
            assert_eq!(r.hit_way, Some(i as u8));
            assert_eq!(r.probes, i as u32 + 1);
        }
    }

    #[test]
    fn miss_scans_whole_set() {
        let view = SetView::from_parts(&[10, 11], &[true, true], &[0, 1]);
        let r = Naive.lookup(&view, 99);
        assert_eq!(r.hit_way, None);
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn invalid_frames_are_still_probed() {
        // Way 0 is invalid but its frame must still be read in a serial scan.
        let view = SetView::from_parts(&[99, 7], &[false, true], &[0, 1]);
        let r = Naive.lookup(&view, 7);
        assert_eq!(r.hit_way, Some(1));
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn one_way_set_is_direct_mapped() {
        let view = SetView::from_parts(&[3], &[true], &[0]);
        assert_eq!(Naive.lookup(&view, 3).probes, 1);
        assert_eq!(Naive.lookup(&view, 4).probes, 1);
    }

    #[test]
    fn scan_order_ignores_mru() {
        // MRU order is reversed; naive must still scan in frame order.
        let view = SetView::from_parts(&[10, 11, 12, 13], &[true; 4], &[3, 2, 1, 0]);
        assert_eq!(Naive.lookup(&view, 10).probes, 1);
    }
}
