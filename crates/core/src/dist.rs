//! MRU-distance distributions (the `fᵢ` of §2.1 and Figure 5).

use serde::{Deserialize, Serialize};

/// Histogram of MRU distances observed on cache hits.
///
/// Distance `i` (0-based) means the hit was to the `(i+1)`-th entry of the
/// set's MRU list; `f(i)` is the paper's `f_{i+1}` — the probability that
/// the `(i+1)`-th most-recently-used tag matches, given a hit.
///
/// # Example
///
/// ```
/// use seta_core::MruDistanceHistogram;
///
/// let mut h = MruDistanceHistogram::new(4);
/// h.record(0);
/// h.record(0);
/// h.record(2);
/// assert!((h.f(0) - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MruDistanceHistogram {
    counts: Vec<u64>,
}

impl MruDistanceHistogram {
    /// Creates a histogram for distances `0..associativity`.
    ///
    /// # Panics
    ///
    /// Panics if `associativity` is zero.
    pub fn new(associativity: usize) -> Self {
        assert!(associativity > 0, "associativity must be positive");
        MruDistanceHistogram {
            counts: vec![0; associativity],
        }
    }

    /// Number of distance bins (the associativity).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Records a hit at 0-based MRU distance `distance`.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is out of range.
    pub fn record(&mut self, distance: usize) {
        assert!(
            distance < self.counts.len(),
            "distance {distance} out of 0..{}",
            self.counts.len()
        );
        self.counts[distance] += 1;
    }

    /// Raw count at a distance.
    pub fn count(&self, distance: usize) -> u64 {
        self.counts.get(distance).copied().unwrap_or(0)
    }

    /// Total hits recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `fᵢ` for 0-based `i`: fraction of hits at that distance (0 when no
    /// hits have been recorded).
    pub fn f(&self, distance: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(distance) as f64 / total as f64
        }
    }

    /// The full normalized distribution, for feeding
    /// [`model::mru_hit`](crate::model::mru_hit).
    pub fn distribution(&self) -> Vec<f64> {
        (0..self.bins()).map(|i| self.f(i)).collect()
    }

    /// Fraction of hits at distance ≤ `distance` (cumulative).
    pub fn cumulative(&self, distance: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            let head: u64 = self.counts.iter().take(distance + 1).sum();
            head as f64 / total as f64
        }
    }

    /// Expected probes for an MRU hit implied by this distribution:
    /// `1 + Σ (i+1)·f(i)` — matches what a trace-driven
    /// [`Mru`](crate::lookup::Mru) run measures.
    pub fn expected_hit_probes(&self) -> f64 {
        1.0 + (0..self.bins())
            .map(|i| (i as f64 + 1.0) * self.f(i))
            .sum::<f64>()
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin counts differ.
    pub fn merge(&mut self, other: &MruDistanceHistogram) {
        assert_eq!(self.bins(), other.bins(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_normalizes() {
        let mut h = MruDistanceHistogram::new(4);
        for _ in 0..6 {
            h.record(0);
        }
        for _ in 0..3 {
            h.record(1);
        }
        h.record(3);
        assert_eq!(h.total(), 10);
        assert!((h.f(0) - 0.6).abs() < 1e-12);
        assert!((h.f(1) - 0.3).abs() < 1e-12);
        assert_eq!(h.f(2), 0.0);
        assert!((h.f(3) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = MruDistanceHistogram::new(2);
        assert_eq!(h.total(), 0);
        assert_eq!(h.f(0), 0.0);
        assert_eq!(h.cumulative(1), 0.0);
        assert_eq!(h.expected_hit_probes(), 1.0);
    }

    #[test]
    fn cumulative_reaches_one() {
        let mut h = MruDistanceHistogram::new(3);
        h.record(0);
        h.record(1);
        h.record(2);
        assert!((h.cumulative(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.cumulative(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_probes_matches_hand_computation() {
        let mut h = MruDistanceHistogram::new(4);
        // f = [0.5, 0.25, 0.25, 0]: E = 1 + 0.5·1 + 0.25·2 + 0.25·3 = 2.75.
        h.record(0);
        h.record(0);
        h.record(1);
        h.record(2);
        assert!((h.expected_hit_probes() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn expected_probes_agrees_with_model() {
        let mut h = MruDistanceHistogram::new(4);
        for (d, n) in [(0usize, 7u64), (1, 2), (2, 1), (3, 2)] {
            for _ in 0..n {
                h.record(d);
            }
        }
        let via_model = crate::model::mru_hit(&h.distribution());
        assert!((h.expected_hit_probes() - via_model).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = MruDistanceHistogram::new(2);
        a.record(0);
        let mut b = MruDistanceHistogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(1), 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_distance_panics() {
        MruDistanceHistogram::new(2).record(2);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn merge_rejects_mismatched_bins() {
        MruDistanceHistogram::new(2).merge(&MruDistanceHistogram::new(3));
    }
}
