//! Probe-level observation of lookups.
//!
//! A [`ProbeObserver`] receives the micro-events behind one lookup's probe
//! count: which ways a serial scan touched, when the MRU list was read,
//! which subsets a partial compare probed, and which stored tags passed a
//! partial compare (and whether the full compare then matched). The
//! aggregate probe count in [`Lookup`](crate::lookup::Lookup) says *how
//! much* a search cost; the observer events say *why*.
//!
//! The trait mirrors the `MetricsSink` pattern of `seta-cache`: every
//! method defaults to a no-op and the unit type `()` implements the trait,
//! so the un-instrumented path — `LookupStrategy::lookup`, which drives
//! the same search code with `&mut ()` — monomorphizes the hooks away
//! entirely. Instrumented callers go through
//! [`LookupStrategy::lookup_observed`](crate::lookup::LookupStrategy::lookup_observed),
//! which takes `&mut dyn ProbeObserver` so it stays object-safe for the
//! `Box<dyn LookupStrategy>` collections the simulator uses.
//!
//! # Example
//!
//! Count the ways a naive scan examines:
//!
//! ```
//! use seta_core::lookup::{LookupStrategy, Naive};
//! use seta_core::{ProbeObserver, SetView};
//!
//! #[derive(Default)]
//! struct Touched(Vec<u8>);
//! impl ProbeObserver for Touched {
//!     fn tag_probe(&mut self, way: u8) {
//!         self.0.push(way);
//!     }
//! }
//!
//! let view = SetView::from_parts(&[5, 6, 7, 8], &[true; 4], &[0, 1, 2, 3]);
//! let mut touched = Touched::default();
//! let r = Naive.lookup_observed(&view, 7, &mut touched);
//! assert_eq!(r.probes, 3);
//! assert_eq!(touched.0, vec![0, 1, 2]);
//! ```

/// Receives the micro-events of one lookup.
///
/// Every method is a no-op by default; implement only the events a given
/// analysis needs. The events map to probes as follows:
///
/// * [`tag_probe`](Self::tag_probe) — one probe (a serial single-tag
///   read-and-compare, as in the naive and MRU scans);
/// * [`group_probe`](Self::group_probe) — one probe reading several ways
///   at once (the whole set for traditional, one bank group for banked);
/// * [`mru_list_read`](Self::mru_list_read) — one probe (the per-set MRU
///   list);
/// * [`partial_probe`](Self::partial_probe) — one probe (a subset's
///   concurrent step-one partial compare);
/// * [`partial_candidate`](Self::partial_candidate) — one probe (the
///   serial step-two full compare of a tag that passed step one). A
///   candidate with `matched == false` is a *false match*: a probe the
///   partial compare failed to filter out.
pub trait ProbeObserver {
    /// A serial read-and-compare of the single stored tag at `way`.
    fn tag_probe(&mut self, _way: u8) {}

    /// A wide read-and-compare of `ways` stored tags in one probe
    /// (`group` is the 0-based visit order of the group).
    fn group_probe(&mut self, _group: u32, _ways: u8) {}

    /// The extra probe that reads the per-set MRU list.
    fn mru_list_read(&mut self) {}

    /// A step-one concurrent partial compare over subset `subset`.
    fn partial_probe(&mut self, _subset: u32) {}

    /// A stored tag at `way` passed the partial compare and was
    /// full-compared; `matched` is the full compare's outcome.
    fn partial_candidate(&mut self, _way: u8, _matched: bool) {}
}

/// The do-nothing observer, for un-instrumented lookups.
impl ProbeObserver for () {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_observer_accepts_every_event() {
        let mut obs = ();
        obs.tag_probe(0);
        obs.group_probe(0, 4);
        obs.mru_list_read();
        obs.partial_probe(1);
        obs.partial_candidate(2, true);
    }

    #[test]
    fn default_methods_are_no_ops() {
        struct OnlyTags(u32);
        impl ProbeObserver for OnlyTags {
            fn tag_probe(&mut self, _way: u8) {
                self.0 += 1;
            }
        }
        let mut o = OnlyTags(0);
        o.tag_probe(1);
        o.mru_list_read(); // defaulted, must not disturb state
        assert_eq!(o.0, 1);
    }
}
