//! Inexpensive implementations of set-associativity.
//!
//! This crate is the primary contribution of the reproduction of
//! *Kessler, Jooss, Lebeck and Hill, "Inexpensive Implementations of
//! Set-Associativity" (ISCA 1989)*: the four ways of implementing an
//! a-way set-associative cache lookup, priced in **probes** (tag-memory
//! read-and-compare operations):
//!
//! | strategy | hardware | hit cost | miss cost |
//! |---|---|---|---|
//! | [`Traditional`](lookup::Traditional) | `a×t`-wide tag RAM, `a` comparators | 1 | 1 |
//! | [`Naive`](lookup::Naive) | `t`-wide tag RAM, 1 comparator | `(a−1)/2 + 1` | `a` |
//! | [`Mru`](lookup::Mru) | same + per-set MRU list | `1 + Σ i·fᵢ` | `a + 1` |
//! | [`PartialCompare`](lookup::PartialCompare) | same, sliced comparator | `≈ 2 + (a−1)/2^(k+1)` | `≈ 1 + a/2^k` |
//!
//! The crate is self-contained (no dependency on the cache simulator): a
//! lookup strategy prices a search of one cache set given a [`SetView`] —
//! the set's stored tags, valid bits, and MRU order — and the incoming
//! tag. Driving strategies against live caches is `seta-sim`'s job.
//!
//! Submodules:
//!
//! * [`lookup`] — the four strategies behind the [`LookupStrategy`] trait.
//! * [`observe`] — the zero-cost [`ProbeObserver`] hook exposing the
//!   micro-events behind each lookup's probe count.
//! * [`transform`] — GF(2)-linear tag transformations that randomize the
//!   high tag bits so partial compares behave (§2.2 and Figure 6).
//! * [`packed`] — packed-lane tag storage and the SWAR evaluation of the
//!   partial-compare step one (all slots of a subset in one XOR).
//! * [`model`] — the closed-form expected-probe formulas of Table 1.
//! * [`timing`] — the access/cycle-time and package-count cost model of
//!   Table 2.
//! * [`probe`] — probe accounting used by trace-driven runs.
//! * [`dist`] — MRU-distance (`fᵢ`) histograms for Figure 5.
//! * [`contention`] — the shared-bus queueing model behind the paper's
//!   multiprocessor motivation.
//!
//! # Example
//!
//! Price one lookup under two implementations:
//!
//! ```
//! use seta_core::lookup::{LookupStrategy, Naive, Traditional};
//! use seta_core::SetView;
//!
//! // A 4-way set holding tags 7, 9, 3, 5; MRU order [2, 0, 3, 1].
//! let view = SetView::from_parts(&[7, 9, 3, 5], &[true; 4], &[2, 0, 3, 1]);
//! let hit = Traditional.lookup(&view, 3);
//! assert_eq!((hit.hit_way, hit.probes), (Some(2), 1));
//! let hit = Naive.lookup(&view, 3);
//! assert_eq!((hit.hit_way, hit.probes), (Some(2), 3)); // scanned ways 0,1,2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod dist;
pub mod lookup;
pub mod model;
pub mod observe;
pub mod packed;
pub mod probe;
pub mod set_view;
pub mod timing;
pub mod transform;

pub use dist::MruDistanceHistogram;
pub use lookup::{Lookup, LookupStrategy, StrategyKind};
pub use observe::ProbeObserver;
pub use packed::{LaneSpec, LaneView, PackedLanes};
pub use probe::{ProbeStats, Tally};
pub use set_view::{SetView, MAX_ASSOC};

#[cfg(test)]
mod concurrency_audit {
    //! Send/Sync audit of every type a concurrent cache shares across
    //! threads. Lookup strategies and their state are immutable values —
    //! stored tags live in the cache, not the strategy — so all of them
    //! must be freely shareable. A compile failure here means someone
    //! added interior mutability (or a raw pointer) to strategy state,
    //! which would silently forbid `seta-serve`'s striped sharing.

    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn strategy_state_is_send_and_sync() {
        assert_send_sync::<StrategyKind>();
        assert_send_sync::<lookup::Traditional>();
        assert_send_sync::<lookup::Naive>();
        assert_send_sync::<lookup::Mru>();
        assert_send_sync::<lookup::PartialCompare>();
        assert_send_sync::<lookup::Banked>();
        assert_send_sync::<lookup::ScanOrder>();
        assert_send_sync::<lookup::TransformKind>();
    }

    #[test]
    fn lookup_inputs_and_outputs_are_send_and_sync() {
        assert_send_sync::<SetView>();
        assert_send_sync::<Lookup>();
        assert_send_sync::<LaneSpec>();
        assert_send_sync::<PackedLanes>();
        assert_send_sync::<LaneView<'static>>();
        assert_send_sync::<ProbeStats>();
        assert_send_sync::<Tally>();
        assert_send_sync::<MruDistanceHistogram>();
    }
}
