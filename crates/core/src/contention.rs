//! Shared-bus contention model.
//!
//! The paper's introduction motivates wide associativity with
//! multiprocessor economics: "bus miss times with low utilizations may be
//! small, but delays due to contention among processors can become large
//! and are sensitive to cache miss ratio." This module provides the
//! standard open queueing model for that sentence — an M/M/1 bus shared
//! by `n` processors — so the simulated miss ratios can be translated
//! into the contention delays the paper argues about.
//!
//! The model is deliberately simple (exponential service, Poisson
//! arrivals); it is the textbook first-order tool of the era, not a
//! detailed interconnect simulation.

use serde::{Deserialize, Serialize};

/// An M/M/1 shared bus: one transaction served at a time, mean service
/// time `service_ns` per cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusModel {
    service_ns: f64,
}

impl BusModel {
    /// Creates a bus with the given mean per-miss service time.
    ///
    /// # Panics
    ///
    /// Panics if `service_ns` is not positive and finite.
    pub fn new(service_ns: f64) -> Self {
        assert!(
            service_ns.is_finite() && service_ns > 0.0,
            "service time must be positive and finite, got {service_ns}"
        );
        BusModel { service_ns }
    }

    /// Mean per-miss service time, ns.
    pub fn service_ns(&self) -> f64 {
        self.service_ns
    }

    /// Bus utilization offered by `n` processors that each generate
    /// `miss_rate_per_ns` misses per nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `miss_rate_per_ns` is negative or not finite.
    pub fn utilization(&self, n: u32, miss_rate_per_ns: f64) -> f64 {
        assert!(
            miss_rate_per_ns.is_finite() && miss_rate_per_ns >= 0.0,
            "miss rate must be non-negative and finite, got {miss_rate_per_ns}"
        );
        n as f64 * miss_rate_per_ns * self.service_ns
    }

    /// Mean time a miss spends at the bus (queueing + service) at the
    /// given utilization: `s / (1 − ρ)`. Returns `None` at or beyond
    /// saturation (`ρ ≥ 1`).
    pub fn residence_ns(&self, utilization: f64) -> Option<f64> {
        if utilization >= 1.0 {
            None
        } else {
            Some(self.service_ns / (1.0 - utilization))
        }
    }

    /// Self-consistent effective time per processor reference for `n`
    /// processors, where each reference costs `hit_ns` plus, with
    /// probability `miss_ratio`, a bus round trip. The miss rate depends
    /// on the reference time, which depends on bus residency, which
    /// depends on the miss rate; the closed system self-throttles, and the
    /// self-consistent time is the stable root of
    ///
    /// ```text
    /// t = hit + m·t/(t − u),   m = miss_ratio·s,   u = n·miss_ratio·s
    /// ```
    ///
    /// i.e. `t = (u+hit+m+√((u+hit+m)² − 4·hit·u))/2`. The bus never hard-
    /// saturates — reference time simply grows without bound as `n` does —
    /// which is exactly the "delays due to contention … can become large"
    /// behaviour the paper describes.
    ///
    /// # Panics
    ///
    /// Panics if `hit_ns` is not positive or `miss_ratio` is not a
    /// probability.
    pub fn effective_ref_ns(&self, n: u32, hit_ns: f64, miss_ratio: f64) -> f64 {
        assert!(
            hit_ns.is_finite() && hit_ns > 0.0,
            "hit time must be positive, got {hit_ns}"
        );
        assert!(
            (0.0..=1.0).contains(&miss_ratio),
            "miss_ratio {miss_ratio} is not a probability"
        );
        if miss_ratio == 0.0 {
            return hit_ns;
        }
        let m = miss_ratio * self.service_ns;
        let u = n as f64 * m;
        let b = u + hit_ns + m;
        (b + (b * b - 4.0 * hit_ns * u).sqrt()) / 2.0
    }

    /// Contention slowdown: effective reference time for `n` processors
    /// relative to a single processor.
    pub fn slowdown(&self, n: u32, hit_ns: f64, miss_ratio: f64) -> f64 {
        self.effective_ref_ns(n, hit_ns, miss_ratio) / self.effective_ref_ns(1, hit_ns, miss_ratio)
    }

    /// The largest processor count (capped at `limit`) whose contention
    /// slowdown stays within `max_slowdown` — the practical capacity of
    /// the bus for this cache configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_slowdown < 1`.
    pub fn max_processors(
        &self,
        hit_ns: f64,
        miss_ratio: f64,
        limit: u32,
        max_slowdown: f64,
    ) -> u32 {
        assert!(max_slowdown >= 1.0, "max_slowdown must be at least 1");
        (1..=limit)
            .take_while(|&n| self.slowdown(n, hit_ns, miss_ratio) <= max_slowdown)
            .last()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residence_grows_with_utilization() {
        let bus = BusModel::new(100.0);
        let low = bus.residence_ns(0.1).expect("below saturation");
        let high = bus.residence_ns(0.9).expect("below saturation");
        assert!((low - 111.11).abs() < 0.1);
        assert!((high - 1000.0).abs() < 0.1);
        assert!(bus.residence_ns(1.0).is_none());
        assert!(bus.residence_ns(1.5).is_none());
    }

    #[test]
    fn zero_utilization_is_pure_service() {
        let bus = BusModel::new(250.0);
        assert_eq!(bus.residence_ns(0.0), Some(250.0));
    }

    #[test]
    fn utilization_scales_linearly() {
        let bus = BusModel::new(100.0);
        let one = bus.utilization(1, 0.001);
        let four = bus.utilization(4, 0.001);
        assert!((four - 4.0 * one).abs() < 1e-12);
    }

    #[test]
    fn effective_time_grows_with_processors() {
        let bus = BusModel::new(200.0);
        let mut prev = 0.0;
        for n in 1..=8 {
            let t = bus.effective_ref_ns(n, 50.0, 0.02);
            assert!(t > prev, "n={n}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn lower_miss_ratio_tolerates_more_processors() {
        // The introduction's argument: associativity's lower miss ratio
        // keeps contention delays acceptable for more processors, even
        // with a slower (serial, multi-probe) hit time.
        let bus = BusModel::new(400.0);
        let direct = bus.max_processors(60.0, 0.05, 128, 2.0);
        let assoc = bus.max_processors(90.0, 0.02, 128, 2.0);
        assert!(
            assoc > direct,
            "4-way-ish ({assoc}) should sustain more processors than direct-mapped ({direct})"
        );
    }

    #[test]
    fn zero_miss_ratio_never_contends() {
        let bus = BusModel::new(1000.0);
        assert_eq!(bus.effective_ref_ns(64, 10.0, 0.0), 10.0);
        assert_eq!(bus.max_processors(10.0, 0.0, 64, 1.5), 64);
        assert_eq!(bus.slowdown(32, 10.0, 0.0), 1.0);
    }

    #[test]
    fn solution_is_self_consistent() {
        let bus = BusModel::new(300.0);
        let n = 6;
        let (hit, mr) = (40.0, 0.03);
        let t = bus.effective_ref_ns(n, hit, mr);
        let rho = bus.utilization(n, mr / t);
        assert!(rho < 1.0, "stable root keeps the bus below saturation");
        let residence = bus.residence_ns(rho).expect("below saturation");
        assert!(
            (t - (hit + mr * residence)).abs() < 1e-6,
            "t={t}, rhs={}",
            hit + mr * residence
        );
    }

    #[test]
    fn single_processor_with_idle_bus_pays_pure_service() {
        // With n=1 the paper's "low utilization" case: residence stays
        // near the raw service time.
        let bus = BusModel::new(200.0);
        let t = bus.effective_ref_ns(1, 100.0, 0.01);
        // t ≈ hit + mr·s·(small queueing correction).
        assert!(t > 100.0 + 0.01 * 200.0 - 1e-9);
        assert!(t < 100.0 + 0.01 * 200.0 * 1.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_time_panics() {
        BusModel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_miss_ratio_panics() {
        BusModel::new(100.0).effective_ref_ns(1, 10.0, 1.5);
    }
}
