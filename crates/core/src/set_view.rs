//! The input to a lookup: a snapshot of one cache set.

use std::fmt;

/// Maximum associativity a [`SetView`] can hold.
///
/// The paper studies associativities up to 16; 32 leaves headroom for
/// extension studies while keeping the view a small, copyable, heap-free
/// value.
pub const MAX_ASSOC: usize = 32;

/// A snapshot of one cache set: stored tags, valid bits, and the MRU order,
/// as a lookup strategy would see them at the start of a cache access.
///
/// Stored tags are full-width (`u64`). A correctly functioning cache's tags
/// uniquely identify blocks within a set, so *full* compares against a
/// `SetView` are exact; the narrower stored-tag widths the paper studies
/// (16 and 32 bits) matter only to the *partial*-compare strategy, which
/// extracts its k-bit slices from a configured `t`-bit window (see
/// [`PartialCompare`](crate::lookup::PartialCompare)).
///
/// # Example
///
/// ```
/// use seta_core::SetView;
///
/// let view = SetView::from_parts(&[10, 20], &[true, false], &[1, 0]);
/// assert_eq!(view.ways(), 2);
/// assert!(view.is_valid(0));
/// assert!(!view.is_valid(1));
/// assert_eq!(view.order(), &[1, 0]);
/// ```
#[derive(Clone, Copy)]
pub struct SetView {
    ways: u8,
    tags: [u64; MAX_ASSOC],
    valid: u32,
    order: [u8; MAX_ASSOC],
}

impl SetView {
    /// Builds a view from parallel slices: `tags[w]` and `valid[w]` describe
    /// way `w`, and `order` lists ways most-recently-used first.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length, exceed [`MAX_ASSOC`], are
    /// empty, or if `order` is not a permutation of the ways.
    pub fn from_parts(tags: &[u64], valid: &[bool], order: &[u8]) -> Self {
        let ways = tags.len();
        assert!(ways > 0, "a set has at least one way");
        assert!(
            ways <= MAX_ASSOC,
            "associativity {ways} exceeds MAX_ASSOC {MAX_ASSOC}"
        );
        assert_eq!(valid.len(), ways, "valid mask length mismatch");
        assert_eq!(order.len(), ways, "order length mismatch");
        let mut seen = [false; MAX_ASSOC];
        for &w in order {
            assert!((w as usize) < ways, "order names way {w} of {ways}");
            assert!(!seen[w as usize], "order repeats way {w}");
            seen[w as usize] = true;
        }
        Self::build(tags, valid, order)
    }

    /// [`from_parts`](Self::from_parts) for callers that already guarantee
    /// the invariants — equal slice lengths in `1..=MAX_ASSOC` and `order`
    /// a permutation of the ways — such as a simulator snapshotting a
    /// well-formed cache set on every access. Skips the permutation
    /// validation on release builds (it is O(ways) of branching per cache
    /// access, pure overhead on the lookup hot path); debug builds still
    /// check everything.
    pub fn from_trusted_parts(tags: &[u64], valid: &[bool], order: &[u8]) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::from_parts(tags, valid, order)
        }
        #[cfg(not(debug_assertions))]
        {
            Self::build(tags, valid, order)
        }
    }

    /// Shared constructor body; callers have validated (or vouch for) the
    /// invariants. The slice copies still bound-check `ways`.
    fn build(tags: &[u64], valid: &[bool], order: &[u8]) -> Self {
        let ways = tags.len();
        let mut view = SetView {
            ways: ways as u8,
            tags: [0; MAX_ASSOC],
            valid: 0,
            order: [0; MAX_ASSOC],
        };
        view.tags[..ways].copy_from_slice(tags);
        view.order[..ways].copy_from_slice(order);
        for (w, &v) in valid.iter().enumerate() {
            if v {
                view.valid |= 1 << w;
            }
        }
        view
    }

    /// Number of ways in the set.
    pub fn ways(&self) -> usize {
        self.ways as usize
    }

    /// Stored tag of way `w` (meaningful only if [`is_valid`](Self::is_valid)).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn tag(&self, w: usize) -> u64 {
        assert!(w < self.ways(), "way {w} out of range");
        self.tags[w]
    }

    /// Whether way `w` holds a block.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn is_valid(&self, w: usize) -> bool {
        assert!(w < self.ways(), "way {w} out of range");
        self.valid & (1 << w) != 0
    }

    /// All stored tags as a slice (`tags()[w]` is meaningful only when the
    /// corresponding [`valid_mask`](Self::valid_mask) bit is set).
    pub fn tags(&self) -> &[u64] {
        &self.tags[..self.ways()]
    }

    /// The MRU order: way indices, most-recently-used first.
    pub fn order(&self) -> &[u8] {
        &self.order[..self.ways()]
    }

    /// Bitmask of valid ways: bit `w` set iff way `w` holds a block.
    #[inline]
    pub fn valid_mask(&self) -> u32 {
        self.valid
    }

    /// Whole-set equality bitmask: bit `w` set iff way `w` is valid and its
    /// stored tag equals `tag`. This is the branchless core of the fast
    /// lookup paths — one pass of data-parallel compares, no early exits —
    /// so the compiler is free to vectorize it.
    #[inline]
    pub fn eq_mask(&self, tag: u64) -> u32 {
        let mut m = 0u32;
        for (w, &t) in self.tags[..self.ways()].iter().enumerate() {
            m |= ((t == tag) as u32) << w;
        }
        m & self.valid
    }

    /// The way whose valid stored tag equals `tag`, if any. This is ground
    /// truth — what an oracle with free parallel compare would find.
    #[inline]
    pub fn matching_way(&self, tag: u64) -> Option<u8> {
        (0..self.ways())
            .find(|&w| self.is_valid(w) && self.tags[w] == tag)
            .map(|w| w as u8)
    }
}

impl fmt::Debug for SetView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("SetView");
        d.field("ways", &self.ways());
        let tags: Vec<Option<u64>> = (0..self.ways())
            .map(|w| self.is_valid(w).then(|| self.tags[w]))
            .collect();
        d.field("tags", &tags);
        d.field("order", &self.order());
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let v = SetView::from_parts(&[1, 2, 3, 4], &[true, false, true, false], &[3, 1, 0, 2]);
        assert_eq!(v.ways(), 4);
        assert_eq!(v.tag(2), 3);
        assert!(v.is_valid(0));
        assert!(!v.is_valid(3));
        assert_eq!(v.order(), &[3, 1, 0, 2]);
    }

    #[test]
    fn matching_way_ignores_invalid() {
        let v = SetView::from_parts(&[9, 9], &[false, true], &[0, 1]);
        assert_eq!(v.matching_way(9), Some(1));
        assert_eq!(v.matching_way(8), None);
    }

    #[test]
    fn single_way_view() {
        let v = SetView::from_parts(&[42], &[true], &[0]);
        assert_eq!(v.ways(), 1);
        assert_eq!(v.matching_way(42), Some(0));
    }

    #[test]
    fn max_assoc_is_supported() {
        let tags: Vec<u64> = (0..MAX_ASSOC as u64).collect();
        let valid = vec![true; MAX_ASSOC];
        let order: Vec<u8> = (0..MAX_ASSOC as u8).rev().collect();
        let v = SetView::from_parts(&tags, &valid, &order);
        assert_eq!(
            v.matching_way(MAX_ASSOC as u64 - 1),
            Some(MAX_ASSOC as u8 - 1)
        );
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn empty_view_panics() {
        SetView::from_parts(&[], &[], &[]);
    }

    #[test]
    #[should_panic(expected = "MAX_ASSOC")]
    fn oversized_view_panics() {
        let tags = vec![0u64; MAX_ASSOC + 1];
        let valid = vec![true; MAX_ASSOC + 1];
        let order: Vec<u8> = (0..=MAX_ASSOC as u8).collect();
        SetView::from_parts(&tags, &valid, &order);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_order_panics() {
        SetView::from_parts(&[1, 2], &[true, true], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "names way")]
    fn out_of_range_order_panics() {
        SetView::from_parts(&[1, 2], &[true, true], &[0, 2]);
    }

    #[test]
    fn trusted_parts_match_checked_constructor() {
        let tags = [1u64, 2, 3, 4];
        let valid = [true, false, true, true];
        let order = [3u8, 1, 0, 2];
        let checked = SetView::from_parts(&tags, &valid, &order);
        let trusted = SetView::from_trusted_parts(&tags, &valid, &order);
        assert_eq!(checked.ways(), trusted.ways());
        assert_eq!(checked.order(), trusted.order());
        for w in 0..4 {
            assert_eq!(checked.is_valid(w), trusted.is_valid(w));
            assert_eq!(checked.tag(w), trusted.tag(w));
        }
    }

    #[test]
    fn debug_shows_invalid_ways_as_none() {
        let v = SetView::from_parts(&[7, 8], &[true, false], &[0, 1]);
        let s = format!("{v:?}");
        assert!(s.contains("Some(7)"), "{s}");
        assert!(s.contains("None"), "{s}");
    }
}
