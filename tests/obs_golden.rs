//! Golden test for the observability pipeline: a short synthetic run with
//! a metrics writer must emit well-formed JSONL — every line parses, the
//! counters are monotone across snapshots, and the final snapshot agrees
//! exactly with the `RunOutcome` totals.

use serde_json::Value;
use seta::cache::CacheConfig;
use seta::obs::labeled;
use seta::sim::metered::{simulate_instrumented, MeterConfig};
use seta::sim::runner::standard_strategies;
use seta::trace::gen::{AtumLike, AtumLikeConfig};

fn short_run(snapshot_every: u64) -> (Vec<String>, seta::sim::MeteredRun) {
    let l1 = CacheConfig::direct_mapped(4 * 1024, 16).unwrap();
    let l2 = CacheConfig::new(16 * 1024, 32, 4).unwrap();
    let mut workload = AtumLikeConfig::paper_like();
    workload.segments = 3;
    workload.refs_per_segment = 10_000;
    let events = AtumLike::new(workload, 77);
    let strategies = standard_strategies(4, 16);
    let cfg = MeterConfig {
        snapshot_every,
        progress: false,
        expected_refs: Some(30_000),
        ..MeterConfig::default()
    };
    let mut out: Vec<u8> = Vec::new();
    let run = simulate_instrumented(
        l1,
        l2,
        events,
        &strategies,
        "synthetic:golden 3x10000",
        77,
        &cfg,
        Some(&mut out),
    )
    .expect("writing to a Vec cannot fail");
    let text = String::from_utf8(out).expect("JSONL is UTF-8");
    let lines: Vec<String> = text.lines().map(str::to_owned).collect();
    (lines, run)
}

fn counter(line: &Value, name: &str) -> u64 {
    line["counters"][name]
        .as_u64()
        .unwrap_or_else(|| panic!("counter {name} missing or not a u64"))
}

#[test]
fn every_line_is_well_formed_json() {
    let (lines, _) = short_run(5_000);
    assert!(lines.len() >= 2, "expected periodic + final snapshots");
    for (i, line) in lines.iter().enumerate() {
        let v: Value = serde_json::from_str(line).expect("each line parses as JSON");
        for key in ["seq", "refs", "counters", "gauges", "histograms"] {
            assert!(!v[key].is_null(), "line {i} lacks {key:?}");
        }
        assert_eq!(v["seq"].as_u64(), Some(i as u64), "seq is sequential");
    }
}

#[test]
fn counters_are_monotone_across_snapshots() {
    let (lines, _) = short_run(5_000);
    let parsed: Vec<Value> = lines
        .iter()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    let mut prev_refs = 0u64;
    for pair in parsed.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let refs = b["refs"].as_u64().unwrap();
        assert!(refs >= prev_refs, "refs must be monotone");
        prev_refs = refs;
        let counters = a["counters"].as_object().unwrap();
        for (name, before) in counters {
            let before = before.as_u64().unwrap();
            let after = counter(b, name);
            assert!(
                after >= before,
                "counter {name} regressed: {before} -> {after}"
            );
        }
    }
}

#[test]
fn only_the_last_line_is_final_and_carries_the_manifest() {
    let (lines, run) = short_run(5_000);
    let parsed: Vec<Value> = lines
        .iter()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    for (i, v) in parsed.iter().enumerate() {
        let is_last = i + 1 == parsed.len();
        assert_eq!(v["final"].as_bool().unwrap_or(false), is_last);
        assert_eq!(!v["manifest"].is_null(), is_last);
    }
    let manifest = &parsed.last().unwrap()["manifest"];
    let trace = &manifest["trace"];
    assert_eq!(trace["source"].as_str(), Some("synthetic:golden 3x10000"));
    assert_eq!(trace["seed"].as_u64(), Some(77));
    // One phase per trace segment.
    let phases = manifest["phases"].as_array().unwrap();
    assert_eq!(phases.len(), run.manifest.phases.len());
}

#[test]
fn final_snapshot_matches_run_outcome_totals() {
    let (lines, run) = short_run(5_000);
    let last: Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    let h = &run.outcome.hierarchy;
    assert_eq!(counter(&last, "refs_total"), h.processor_refs);
    assert_eq!(counter(&last, "flushes_total"), h.flushes);
    assert_eq!(counter(&last, "l2_read_ins_total"), h.read_ins);
    assert_eq!(counter(&last, "l2_read_in_hits_total"), h.read_in_hits);
    assert_eq!(counter(&last, "l2_write_backs_total"), h.write_backs);
    for s in &run.outcome.strategies {
        let by = |metric: &str| counter(&last, &labeled(metric, "strategy", &s.name));
        assert_eq!(by("probe_hits_total"), s.probes.hits.count, "{}", s.name);
        assert_eq!(
            by("probe_misses_total"),
            s.probes.misses.count,
            "{}",
            s.name
        );
        assert_eq!(by("hit_probes_total"), s.probes.hits.probes, "{}", s.name);
        assert_eq!(
            by("miss_probes_total"),
            s.probes.misses.probes,
            "{}",
            s.name
        );
        assert_eq!(
            by("write_back_probes_total"),
            s.probes.write_backs.probes,
            "{}",
            s.name
        );
    }
}

#[test]
fn snapshot_every_zero_emits_only_the_final_line() {
    let (lines, _) = short_run(0);
    assert_eq!(lines.len(), 1);
    let v: Value = serde_json::from_str(&lines[0]).unwrap();
    assert_eq!(v["final"].as_bool(), Some(true));
}
