//! Cross-crate invariants: every lookup implementation sees the same cache
//! behaviour; only the probes differ.

use seta::cache::CacheConfig;
use seta::core::lookup::{LookupStrategy, Mru, Naive, PartialCompare, Traditional, TransformKind};
use seta::sim::runner::{simulate, standard_strategies};
use seta::trace::gen::{AtumLike, AtumLikeConfig};

fn workload() -> AtumLike {
    let mut cfg = AtumLikeConfig::paper_like();
    cfg.segments = 2;
    cfg.refs_per_segment = 40_000;
    AtumLike::new(cfg, 2026)
}

fn wide_strategy_set(assoc: u32) -> Vec<Box<dyn LookupStrategy>> {
    let mut v: Vec<Box<dyn LookupStrategy>> = vec![
        Box::new(Traditional),
        Box::new(Naive),
        Box::new(Mru::full()),
        Box::new(Mru::truncated(1)),
        Box::new(Mru::truncated(2)),
    ];
    for kind in [
        TransformKind::None,
        TransformKind::XorFold,
        TransformKind::Improved,
        TransformKind::Swap,
    ] {
        v.push(Box::new(PartialCompare::new(16, 1, kind)));
        if assoc >= 2 {
            v.push(Box::new(PartialCompare::new(32, 2, kind)));
        }
    }
    v
}

#[test]
fn every_strategy_scores_identical_requests() {
    for assoc in [2u32, 4, 8] {
        let l1 = CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1");
        let l2 = CacheConfig::new(32 * 1024, 32, assoc).expect("valid L2");
        let out = simulate(l1, l2, workload(), &wide_strategy_set(assoc));
        let h = &out.hierarchy;
        for s in &out.strategies {
            assert_eq!(s.probes.hits.count, h.read_in_hits, "{} a={assoc}", s.name);
            assert_eq!(
                s.probes.misses.count,
                h.read_ins - h.read_in_hits,
                "{} a={assoc}",
                s.name
            );
            assert_eq!(s.probes.write_backs.count, h.write_backs, "{}", s.name);
        }
    }
}

#[test]
fn probe_totals_respect_strategy_bounds() {
    let assoc = 8u32;
    let l1 = CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1");
    let l2 = CacheConfig::new(32 * 1024, 32, assoc).expect("valid L2");
    let out = simulate(l1, l2, workload(), &wide_strategy_set(assoc));
    for s in &out.strategies {
        let hit = s.probes.hit_mean();
        let miss = s.probes.miss_mean();
        match s.name.as_str() {
            "traditional" => {
                assert_eq!(hit, 1.0);
                assert_eq!(miss, 1.0);
            }
            "naive" => {
                assert!(hit >= 1.0 && hit <= assoc as f64);
                assert_eq!(miss, assoc as f64);
            }
            name if name.starts_with("mru") => {
                assert!(hit >= 2.0 && hit <= assoc as f64 + 1.0, "{name}: {hit}");
                assert_eq!(miss, assoc as f64 + 1.0, "{name}");
            }
            name if name.starts_with("partial") => {
                assert!(hit >= 2.0, "{name}: {hit}");
                assert!(miss >= 1.0 && miss <= 2.0 + assoc as f64, "{name}: {miss}");
            }
            other => panic!("unexpected strategy {other}"),
        }
    }
}

#[test]
fn truncated_mru_lists_interpolate_between_full_and_worst() {
    let l1 = CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1");
    let l2 = CacheConfig::new(32 * 1024, 32, 8).expect("valid L2");
    let out = simulate(l1, l2, workload(), &wide_strategy_set(8));
    let full = out.strategy("mru").expect("full mru").probes.hit_mean();
    let l1_list = out.strategy("mru[1]").expect("mru[1]").probes.hit_mean();
    let l2_list = out.strategy("mru[2]").expect("mru[2]").probes.hit_mean();
    assert!(full <= l2_list + 1e-9, "full {full} vs list-2 {l2_list}");
    assert!(
        l2_list <= l1_list + 1e-9,
        "list-2 {l2_list} vs list-1 {l1_list}"
    );
}

#[test]
fn better_transforms_never_cost_more_probes() {
    let l1 = CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1");
    let l2 = CacheConfig::new(32 * 1024, 32, 4).expect("valid L2");
    let out = simulate(l1, l2, workload(), &wide_strategy_set(4));
    let total = |name: &str| {
        out.strategy(name)
            .unwrap_or_else(|| panic!("{name} present"))
            .probes
            .total_mean()
    };
    let none = total("partial[t=16,s=1,none]");
    let xor = total("partial[t=16,s=1,xor]");
    let improved = total("partial[t=16,s=1,improved]");
    assert!(xor <= none + 1e-9, "xor {xor} vs none {none}");
    assert!(
        improved <= none + 1e-9,
        "improved {improved} vs none {none}"
    );
}

#[test]
fn wider_tags_reduce_partial_probes() {
    // Figure 6's left-graph headline: 32-bit tags beat 16-bit tags for the
    // partial scheme (wider k, fewer false matches).
    let l1 = CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1");
    let l2 = CacheConfig::new(32 * 1024, 32, 8).expect("valid L2");
    let strategies: Vec<Box<dyn LookupStrategy>> = vec![
        Box::new(PartialCompare::new(16, 2, TransformKind::Improved)),
        Box::new(PartialCompare::new(32, 2, TransformKind::Improved)),
    ];
    let out = simulate(l1, l2, workload(), &strategies);
    let narrow = out.strategies[0].probes.total_mean();
    let wide = out.strategies[1].probes.total_mean();
    assert!(wide <= narrow + 1e-9, "t=32 {wide} vs t=16 {narrow}");
}

#[test]
fn standard_strategy_totals_order_like_figure3() {
    // At a=8 with the calibrated workload: naive > mru > partial > traditional.
    let l1 = CacheConfig::direct_mapped(4 * 1024, 16).expect("valid L1");
    let l2 = CacheConfig::new(32 * 1024, 32, 8).expect("valid L2");
    let out = simulate(l1, l2, workload(), &standard_strategies(8, 16));
    let totals: Vec<f64> = out
        .strategies
        .iter()
        .map(|s| s.probes.total_mean())
        .collect();
    let (trad, naive, mru, partial) = (totals[0], totals[1], totals[2], totals[3]);
    assert!(trad < partial, "traditional {trad} vs partial {partial}");
    assert!(partial < mru, "partial {partial} vs mru {mru}");
    assert!(mru < naive, "mru {mru} vs naive {naive}");
}
