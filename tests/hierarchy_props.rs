//! Property tests over the full stack: arbitrary reference streams through
//! the two-level hierarchy with all strategies attached.

use proptest::prelude::*;
use seta::cache::{CacheConfig, TwoLevel};
use seta::sim::runner::{simulate, standard_strategies};
use seta::trace::{TraceEvent, TraceRecord};

fn arbitrary_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        prop_oneof![
            9 => (0u64..0x8000, 0u8..3).prop_map(|(addr, k)| TraceEvent::Ref(match k {
                0 => TraceRecord::read(addr),
                1 => TraceRecord::write(addr),
                _ => TraceRecord::ifetch(addr),
            })),
            1 => Just(TraceEvent::Flush),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hierarchy never over-fills either level and its counters add up.
    #[test]
    fn hierarchy_counters_are_consistent(events in arbitrary_events()) {
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(1024, 32, 4).expect("valid L2");
        let mut h = TwoLevel::new(l1, l2).expect("compatible levels");
        h.run(events.iter().copied(), &mut ());
        let s = h.stats();

        let refs = events.iter().filter(|e| !e.is_flush()).count() as u64;
        let flushes = events.iter().filter(|e| e.is_flush()).count() as u64;
        prop_assert_eq!(s.processor_refs, refs);
        prop_assert_eq!(s.flushes, flushes);
        prop_assert!(s.read_ins <= s.processor_refs);
        prop_assert!(s.read_in_hits <= s.read_ins);
        prop_assert!(s.write_backs <= s.read_ins, "at most one wb per miss");
        prop_assert!(s.write_back_hits <= s.write_backs);
        prop_assert!(h.l1().resident_blocks() <= 16);
        prop_assert!(h.l2().resident_blocks() <= 32);
        prop_assert!(s.global_miss_ratio() <= s.l1_miss_ratio() + 1e-12);
    }

    /// Every strategy agrees with the cache on every hit/miss, for any
    /// stream (enforced by a debug assertion in the runner; this exercises
    /// it and checks the aggregate counts).
    #[test]
    fn strategies_agree_on_arbitrary_streams(events in arbitrary_events()) {
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(2048, 32, 8).expect("valid L2");
        let out = simulate(l1, l2, events, &standard_strategies(8, 16));
        for s in &out.strategies {
            prop_assert_eq!(s.probes.hits.count, out.hierarchy.read_in_hits);
        }
    }

    /// Replaying the same stream twice from a fresh hierarchy gives
    /// identical results (full determinism end to end).
    #[test]
    fn simulation_is_deterministic(events in arbitrary_events()) {
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(1024, 16, 4).expect("valid L2");
        let a = simulate(l1, l2, events.iter().copied(), &standard_strategies(4, 16));
        let b = simulate(l1, l2, events, &standard_strategies(4, 16));
        prop_assert_eq!(a.hierarchy, b.hierarchy);
        for (x, y) in a.strategies.iter().zip(&b.strategies) {
            prop_assert_eq!(x.probes, y.probes);
        }
    }

    /// A flush at any point erases all state: the next reference misses.
    #[test]
    fn flush_always_cold_starts(mut events in arbitrary_events()) {
        events.push(TraceEvent::Flush);
        events.push(TraceEvent::Ref(TraceRecord::read(0x40)));
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(1024, 16, 4).expect("valid L2");
        let mut h = TwoLevel::new(l1, l2).expect("compatible levels");
        let before_last: Vec<_> = events[..events.len() - 1].to_vec();
        h.run(before_last, &mut ());
        let read_ins = h.stats().read_ins;
        let hits = h.stats().read_in_hits;
        h.process(&events[events.len() - 1], &mut ());
        prop_assert_eq!(h.stats().read_ins, read_ins + 1, "post-flush ref reaches L2");
        prop_assert_eq!(h.stats().read_in_hits, hits, "and misses there");
    }
}
