//! Property tests for the instrumented paths: metering and probe-level
//! event tracing are pure observers. For any reference stream, the
//! `RunOutcome` they return is bit-identical to the plain un-metered
//! simulation, and the event-sink totals reconcile with the probe books.

use proptest::prelude::*;
use seta::cache::CacheConfig;
use seta::sim::explain::{explain, ExplainConfig};
use seta::sim::metered::{simulate_instrumented, MeterConfig};
use seta::sim::runner::{simulate, standard_strategies};
use seta::trace::{TraceEvent, TraceRecord};

fn arbitrary_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        prop_oneof![
            9 => (0u64..0x8000, 0u8..3).prop_map(|(addr, k)| TraceEvent::Ref(match k {
                0 => TraceRecord::read(addr),
                1 => TraceRecord::write(addr),
                _ => TraceRecord::ifetch(addr),
            })),
            1 => Just(TraceEvent::Flush),
        ],
        1..400,
    )
}

/// Two outcomes are bit-identical iff their serializations agree on
/// every field (RunOutcome intentionally has no PartialEq).
fn fingerprint(outcome: &seta::sim::RunOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `explain` is observationally equivalent to `simulate`: same
    /// hierarchy stats, same probe books, for any stream.
    #[test]
    fn explain_outcome_is_bit_identical_to_simulate(events in arbitrary_events()) {
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(2048, 32, 4).expect("valid L2");
        let strategies = standard_strategies(4, 16);
        let plain = simulate(l1, l2, events.iter().copied(), &strategies);
        let (traced, report) = explain(
            l1,
            l2,
            events,
            &strategies,
            &ExplainConfig { sample_every: 7, ring_capacity: 32, heatmap_top: 4 },
        );
        prop_assert_eq!(fingerprint(&plain), fingerprint(&traced));
        prop_assert!(report.identities_hold(), "exact checks must pass");
    }

    /// The metered path (metrics registry + JSONL snapshots) is also a
    /// pure observer of the same simulation.
    #[test]
    fn metered_outcome_is_bit_identical_to_simulate(events in arbitrary_events()) {
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(2048, 32, 4).expect("valid L2");
        let strategies = standard_strategies(4, 16);
        let plain = simulate(l1, l2, events.iter().copied(), &strategies);
        let cfg = MeterConfig {
            snapshot_every: 100,
            progress: false,
            expected_refs: None,
            ..MeterConfig::default()
        };
        let mut sink: Vec<u8> = Vec::new();
        let run = simulate_instrumented(
            l1,
            l2,
            events,
            &strategies,
            "prop:explain_props",
            0,
            &cfg,
            Some(&mut sink),
        )
        .expect("writing to a Vec cannot fail");
        prop_assert_eq!(fingerprint(&plain), fingerprint(&run.outcome));
    }

    /// Event-sink totals reconcile with `ProbeStats` per strategy: the
    /// read-in breakdown prices exactly the lookups the stats booked,
    /// and write-backs land on the no-opt books.
    #[test]
    fn event_totals_reconcile_with_probe_stats(events in arbitrary_events()) {
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(2048, 32, 8).expect("valid L2");
        let strategies = standard_strategies(8, 16);
        let (outcome, report) = explain(l1, l2, events, &strategies, &ExplainConfig::default());
        for (a, s) in report.strategies.iter().zip(&outcome.strategies) {
            prop_assert_eq!(&a.name, &s.name);
            prop_assert_eq!(
                a.read_in.lookups,
                s.probes.hits.count + s.probes.misses.count,
                "{}: one breakdown entry per read-in lookup",
                s.name
            );
            prop_assert_eq!(
                a.read_in.probes,
                s.probes.hits.probes + s.probes.misses.probes,
                "{}: read-in probes reconcile",
                s.name
            );
            prop_assert_eq!(
                a.write_back.lookups,
                s.probes_no_opt.write_backs.count,
                "{}: write-back lookups reconcile",
                s.name
            );
            prop_assert_eq!(
                a.write_back.probes,
                s.probes_no_opt.write_backs.probes,
                "{}: write-backs price on the no-opt books",
                s.name
            );
            // Every probe is attributed to exactly one micro-event.
            for b in [&a.read_in, &a.write_back] {
                prop_assert_eq!(
                    b.probes,
                    b.tag_probes + b.group_probes + b.list_reads + b.step_one_probes
                        + b.candidates,
                    "{}: micro-events partition the probes",
                    s.name
                );
            }
        }
    }

    /// Sampling only thins the retained raw events; it never changes the
    /// aggregates. Any 1-in-N keeps the same report totals as 1-in-1.
    #[test]
    fn sampling_rate_does_not_affect_aggregates(
        events in arbitrary_events(),
        every in 1u64..64,
    ) {
        let l1 = CacheConfig::direct_mapped(256, 16).expect("valid L1");
        let l2 = CacheConfig::new(1024, 16, 4).expect("valid L2");
        let strategies = standard_strategies(4, 16);
        let dense = ExplainConfig { sample_every: 1, ..ExplainConfig::default() };
        let sparse = ExplainConfig { sample_every: every, ..ExplainConfig::default() };
        let (_, a) = explain(l1, l2, events.iter().copied(), &strategies, &dense);
        let (_, b) = explain(l1, l2, events, &strategies, &sparse);
        prop_assert_eq!(
            serde_json::to_string(&a.strategies).unwrap(),
            serde_json::to_string(&b.strategies).unwrap()
        );
        prop_assert_eq!(&a.mru_f, &b.mru_f);
        prop_assert!(b.sampling.sampled <= a.sampling.sampled);
    }
}
