//! Robustness of the trace format readers: arbitrary input must produce
//! errors, never panics, and valid prefixes must decode before the error.

use proptest::prelude::*;
use seta::trace::format::{BinaryReader, BinaryWriter, TextReader, TextWriter};
use seta::trace::{TraceEvent, TraceRecord};

proptest! {
    /// The binary reader never panics on arbitrary bytes.
    #[test]
    fn binary_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(reader) = BinaryReader::new(bytes.as_slice()) {
            // Drain fully; errors are fine, panics are not.
            for item in reader {
                if item.is_err() {
                    break;
                }
            }
        }
    }

    /// The text reader never panics on arbitrary strings.
    #[test]
    fn text_reader_never_panics(text in "\\PC*") {
        for item in TextReader::new(text.as_bytes()) {
            if item.is_err() {
                break;
            }
        }
    }

    /// A valid trace followed by garbage yields all valid events first,
    /// then exactly one error (binary format).
    #[test]
    fn binary_valid_prefix_decodes(
        addrs in proptest::collection::vec(any::<u64>(), 1..50),
        garbage in 3u8..0xFF,
    ) {
        let events: Vec<TraceEvent> =
            addrs.iter().map(|&a| TraceEvent::Ref(TraceRecord::read(a))).collect();
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write_all(events.iter().copied()).unwrap();
        w.finish().unwrap();
        buf.push(garbage); // invalid record tag (3..0xFF, excluding 0xFF)
        if garbage == 0xFF {
            return Ok(()); // 0xFF is a legal flush tag
        }

        let mut reader = BinaryReader::new(buf.as_slice()).expect("header is valid");
        let mut decoded = Vec::new();
        let mut saw_error = false;
        for item in &mut reader {
            match item {
                Ok(e) => decoded.push(e),
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        prop_assert_eq!(decoded, events);
        prop_assert!(saw_error);
    }

    /// Text output of any trace is pure ASCII lines, one event per line.
    #[test]
    fn text_output_is_line_per_event(
        addrs in proptest::collection::vec(any::<u64>(), 0..50)
    ) {
        let events: Vec<TraceEvent> =
            addrs.iter().map(|&a| TraceEvent::Ref(TraceRecord::write(a))).collect();
        let mut buf = Vec::new();
        let mut w = TextWriter::new(&mut buf);
        w.write_all(events.iter().copied()).unwrap();
        let text = String::from_utf8(buf).expect("text format is UTF-8");
        prop_assert!(text.is_ascii());
        prop_assert_eq!(text.lines().count(), events.len());
    }
}

#[test]
fn truncations_of_a_valid_trace_never_panic() {
    let events: Vec<TraceEvent> = (0..20)
        .map(|i| {
            if i % 5 == 4 {
                TraceEvent::Flush
            } else {
                TraceEvent::Ref(TraceRecord::read(i * 0x40))
            }
        })
        .collect();
    let mut buf = Vec::new();
    let mut w = BinaryWriter::new(&mut buf);
    w.write_all(events.iter().copied()).unwrap();
    w.finish().unwrap();

    for len in 0..buf.len() {
        if let Ok(reader) = BinaryReader::new(&buf[..len]) {
            for item in reader {
                if item.is_err() {
                    break;
                }
            }
        }
    }
}
