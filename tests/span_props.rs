//! Property tests for the span tracing layer: recording spans must never
//! change what a run computes, and the recorded spans must be structurally
//! sound. For any sweep spec and any worker count, `simulate_many_traced`
//! returns outcomes bit-identical to the sequential reference; every
//! track's spans are well-nested with monotone timestamps; and the shard
//! spans' counter attachments sum exactly to the aggregate run statistics.

use proptest::prelude::*;
use seta::cache::CacheConfig;
use seta::obs::{SpanRecord, SpanTrace};
use seta::sim::runner::{
    simulate, simulate_many_traced_with_threads, simulate_traced, standard_strategies, RunSpec,
};
use seta::sim::RunOutcome;
use seta::trace::gen::{AtumLike, AtumLikeConfig, MultiprogramConfig};

/// A small but structurally complete sweep spec, as in `shard_props`:
/// 1–4 segments, cold or warm, mixed cache shapes.
fn arbitrary_spec() -> impl Strategy<Value = RunSpec> {
    (
        (1usize..=4, 100u64..400),
        (any::<bool>(), any::<u64>(), 0usize..3),
    )
        .prop_map(|((segments, refs_per_segment), (cold, seed, shape))| {
            let multiprogram = MultiprogramConfig {
                mean_quantum: 50,
                os_burst: 8,
                ..MultiprogramConfig::default()
            };
            let (l1, l2) = match shape {
                0 => (
                    CacheConfig::direct_mapped(256, 16).expect("valid L1"),
                    CacheConfig::new(2048, 32, 4).expect("valid L2"),
                ),
                1 => (
                    CacheConfig::direct_mapped(512, 32).expect("valid L1"),
                    CacheConfig::new(4096, 32, 8).expect("valid L2"),
                ),
                _ => (
                    CacheConfig::new(512, 16, 2).expect("valid L1"),
                    CacheConfig::new(2048, 16, 4).expect("valid L2"),
                ),
            };
            RunSpec {
                l1,
                l2,
                trace: AtumLikeConfig {
                    segments,
                    refs_per_segment,
                    flush_between_segments: cold,
                    multiprogram,
                },
                seed,
                tag_bits: 14,
            }
        })
}

fn fingerprint(outcome: &RunOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

fn sequential(spec: &RunSpec) -> String {
    let strategies = standard_strategies(spec.l2.associativity(), spec.tag_bits);
    fingerprint(&simulate(
        spec.l1,
        spec.l2,
        AtumLike::new(spec.trace.clone(), spec.seed),
        &strategies,
    ))
}

/// Total optimized probes a run charged, summed over every strategy —
/// the quantity the shard spans' `probes` counters must conserve.
fn outcome_probes(out: &RunOutcome) -> u64 {
    out.strategies
        .iter()
        .map(|s| s.probes.hits.probes + s.probes.misses.probes + s.probes.write_backs.probes)
        .sum()
}

/// Asserts every track of `trace` is internally sound: timestamps are
/// monotone in recording order, no span ends before it starts, and any
/// two spans on the same track are either nested or disjoint.
fn assert_tracks_well_formed(trace: &SpanTrace) {
    let mut tracks: Vec<u32> = trace.spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for track in tracks {
        let spans: Vec<&SpanRecord> = trace.spans.iter().filter(|s| s.track == track).collect();
        let mut last_start = 0u64;
        for s in &spans {
            prop_assert!(
                s.start_us >= last_start,
                "track {}: span {:?} opened before its predecessor",
                track,
                s.name
            );
            last_start = s.start_us;
            let end = s.start_us.checked_add(s.dur_us);
            prop_assert!(
                end.is_some(),
                "track {}: span {:?} overflows",
                track,
                s.name
            );
        }
        // Spans are recorded in open order, so a later span either starts
        // after an earlier one ended (disjoint) or closes no later than it
        // (nested). Anything else is a partial overlap — impossible if the
        // buffer really closed LIFO.
        for (i, a) in spans.iter().enumerate() {
            let a_end = a.start_us + a.dur_us;
            for b in &spans[i + 1..] {
                let b_end = b.start_us + b.dur_us;
                prop_assert!(
                    b.start_us >= a_end || b_end <= a_end,
                    "track {}: spans {:?} and {:?} partially overlap",
                    track,
                    a.name,
                    b.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The traced sweep returns outcomes bit-identical to the sequential
    /// reference at every worker count, and the trace it records is
    /// well-formed with counters that conserve the aggregate statistics.
    #[test]
    fn traced_sweep_is_invisible_and_records_sound_spans(
        specs in proptest::collection::vec(arbitrary_spec(), 1..=2),
    ) {
        let expected: Vec<String> = specs.iter().map(sequential).collect();
        for threads in [1usize, 2, 16] {
            let (outcomes, trace) = simulate_many_traced_with_threads(&specs, threads);
            prop_assert_eq!(outcomes.len(), specs.len());
            for (i, out) in outcomes.iter().enumerate() {
                prop_assert_eq!(
                    &fingerprint(out),
                    &expected[i],
                    "spec {} diverged at {} worker(s)",
                    i,
                    threads
                );
            }
            assert_tracks_well_formed(&trace);
            // Every reference and probe the sweep performed lands in
            // exactly one shard span's counters.
            let shard_refs: u64 = trace
                .with_cat("shard")
                .filter_map(|s| s.counter("refs"))
                .sum();
            let total_refs: u64 = outcomes.iter().map(|o| o.hierarchy.processor_refs).sum();
            prop_assert_eq!(shard_refs, total_refs, "refs at {} worker(s)", threads);
            let shard_probes: u64 = trace
                .with_cat("shard")
                .filter_map(|s| s.counter("probes"))
                .sum();
            let total_probes: u64 = outcomes.iter().map(outcome_probes).sum();
            prop_assert_eq!(shard_probes, total_probes, "probes at {} worker(s)", threads);
            // Exactly one sweep root, one merge span, and one root per
            // worker that participated.
            prop_assert_eq!(trace.with_cat("sweep").count(), 1);
            prop_assert_eq!(trace.with_cat("merge").count(), 1);
            prop_assert!(trace.with_cat("worker").count() >= 1);
        }
    }

    /// The traced single run agrees with the plain one and its segment
    /// spans conserve the run's counters.
    #[test]
    fn traced_simulate_is_invisible_and_segments_conserve(spec in arbitrary_spec()) {
        let strategies = standard_strategies(spec.l2.associativity(), spec.tag_bits);
        let plain = simulate(
            spec.l1,
            spec.l2,
            AtumLike::new(spec.trace.clone(), spec.seed),
            &strategies,
        );
        let (traced, trace) = simulate_traced(
            spec.l1,
            spec.l2,
            AtumLike::new(spec.trace.clone(), spec.seed),
            &strategies,
        );
        prop_assert_eq!(fingerprint(&traced), fingerprint(&plain));
        assert_tracks_well_formed(&trace);
        let seg_refs: u64 = trace
            .with_cat("segment")
            .filter_map(|s| s.counter("refs"))
            .sum();
        prop_assert_eq!(seg_refs, traced.hierarchy.processor_refs);
        let seg_read_ins: u64 = trace
            .with_cat("segment")
            .filter_map(|s| s.counter("read_ins"))
            .sum();
        prop_assert_eq!(seg_read_ins, traced.hierarchy.read_ins);
    }
}
