//! The analytical model of §2 (Table 1) against trace-driven measurement.
//!
//! The closed forms assume independent uniformly-distributed tags. A
//! uniform-random reference stream satisfies that, so simulation under it
//! must converge to the formulas — the strongest end-to-end check that the
//! probe accounting in `seta-core` + `seta-cache` + `seta-sim` implements
//! exactly the arithmetic the paper analyzes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seta::cache::CacheConfig;
use seta::core::lookup::{LookupStrategy, Mru, Naive, PartialCompare, Traditional, TransformKind};
use seta::core::model;
use seta::sim::runner::simulate;
use seta::trace::{TraceEvent, TraceRecord};

/// The independent-reference model over a pool of random blocks drawn from
/// a huge (2^48-byte) address space: every reference picks a pool block
/// uniformly. The huge space makes the stored tags uniform across all 32+
/// tag bits — the assumption behind the partial-compare formulas — while
/// the bounded pool still produces cache hits.
fn random_trace(n: usize, pool_blocks: usize, seed: u64) -> Vec<TraceEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<u64> = (0..pool_blocks)
        .map(|_| rng.gen_range(0u64..(1 << 48)) & !15)
        .collect();
    (0..n)
        .map(|_| TraceEvent::Ref(TraceRecord::read(pool[rng.gen_range(0..pool.len())])))
        .collect()
}

fn strategies(t: u32, s: u32) -> Vec<Box<dyn LookupStrategy>> {
    vec![
        Box::new(Traditional),
        Box::new(Naive),
        Box::new(Mru::full()),
        Box::new(PartialCompare::new(t, s, TransformKind::None)),
    ]
}

/// Runs random references through a tiny pass-through L1 into the L2 under
/// test, so virtually every reference reaches the L2.
fn run_random(assoc: u32, t: u32, s: u32) -> seta::sim::RunOutcome {
    let l1 = CacheConfig::direct_mapped(64, 16).expect("valid L1");
    let l2 = CacheConfig::new(16 * 1024, 16, assoc).expect("valid L2");
    // A pool 2x the L2's 1024 block frames gives a healthy hit/miss mix.
    let trace = random_trace(150_000, 2048, 99);
    simulate(l1, l2, trace, &strategies(t, s))
}

#[test]
fn traditional_measures_exactly_one() {
    let out = run_random(4, 16, 1);
    let t = &out.strategies[0].probes;
    assert_eq!(t.hit_mean(), 1.0);
    assert_eq!(t.miss_mean(), 1.0);
}

#[test]
fn naive_converges_to_table1() {
    for assoc in [2u32, 4, 8] {
        let out = run_random(assoc, 16, 1);
        let n = &out.strategies[1].probes;
        assert_eq!(n.miss_mean(), model::naive_miss(assoc), "a={assoc}");
        let predicted = model::naive_hit(assoc);
        assert!(
            (n.hit_mean() - predicted).abs() < 0.12,
            "a={assoc}: measured {} vs predicted {predicted}",
            n.hit_mean()
        );
    }
}

#[test]
fn mru_miss_is_exactly_a_plus_one() {
    for assoc in [2u32, 4, 8] {
        let out = run_random(assoc, 16, 1);
        assert_eq!(
            out.strategies[2].probes.miss_mean(),
            model::mru_miss(assoc),
            "a={assoc}"
        );
    }
}

#[test]
fn mru_hit_matches_measured_distance_distribution() {
    let out = run_random(4, 16, 1);
    let measured = out.strategies[2].probes.hit_mean();
    let implied = model::mru_hit(&out.mru_hist.distribution());
    assert!(
        (measured - implied).abs() < 1e-9,
        "measured {measured} vs distribution-implied {implied}"
    );
}

#[test]
fn partial_converges_to_table1_without_subsets() {
    for (assoc, t) in [(4u32, 16u32), (8, 16), (4, 32)] {
        let k = model::partial_k(t, assoc, 1);
        let out = run_random(assoc, t, 1);
        let p = &out.strategies[3].probes;
        let hit = model::partial_hit(assoc, k, 1);
        let miss = model::partial_miss(assoc, k, 1);
        assert!(
            (p.hit_mean() - hit).abs() < 0.12,
            "a={assoc} t={t}: hit {} vs {hit}",
            p.hit_mean()
        );
        assert!(
            (p.miss_mean() - miss).abs() < 0.12,
            "a={assoc} t={t}: miss {} vs {miss}",
            p.miss_mean()
        );
    }
}

#[test]
fn partial_converges_to_table1_with_subsets() {
    // a=8, s=2, t=16 → k=4: the paper's flagship subset configuration.
    let out = run_random(8, 16, 2);
    let p = &out.strategies[3].probes;
    let hit = model::partial_hit(8, 4, 2);
    let miss = model::partial_miss(8, 4, 2);
    assert!(
        (p.hit_mean() - hit).abs() < 0.12,
        "hit {} vs {hit}",
        p.hit_mean()
    );
    assert!(
        (p.miss_mean() - miss).abs() < 0.12,
        "miss {} vs {miss}",
        p.miss_mean()
    );
}

#[test]
fn subsets_trade_hits_for_misses_as_predicted() {
    // Going 1 → 2 subsets at a=8, t=16 must cut miss cost (3.0 → 2.5)
    // while the hit change stays small — the Table 1 note.
    let one = run_random(8, 16, 1);
    let two = run_random(8, 16, 2);
    let m1 = one.strategies[3].probes.miss_mean();
    let m2 = two.strategies[3].probes.miss_mean();
    assert!(m2 < m1, "misses: s=2 {m2} should beat s=1 {m1}");
}

#[test]
fn uniform_random_references_have_uniform_frame_positions() {
    // Sanity check of the experimental setup itself: with no locality, hit
    // positions in frame order are uniform, which is what makes the naive
    // formula exact. Verify via the naive/traditional probe ratio.
    let out = run_random(4, 16, 1);
    let naive = &out.strategies[1].probes;
    let spread = naive.hit_mean() - 1.0; // mean scan depth beyond the first
    assert!(
        (spread - 1.5).abs() < 0.12,
        "mean extra scan depth {spread} should be (a-1)/2 = 1.5"
    );
}
