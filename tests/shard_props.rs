//! Property tests for the sharded sweep runner: splitting a cold-start
//! trace into per-segment shards and merging the counters is invisible.
//! For any sweep spec, `simulate_many` — at any worker count, including
//! the sequential fallback — returns `RunOutcome`s bit-identical to a
//! plain per-spec `simulate` over the whole trace.

use proptest::prelude::*;
use seta::cache::CacheConfig;
use seta::sim::runner::{
    simulate, simulate_many, simulate_many_with_threads, standard_strategies, RunSpec,
};
use seta::trace::gen::{AtumLike, AtumLikeConfig, MultiprogramConfig};

/// A small but structurally complete sweep spec: 1–4 segments, cold or
/// warm, mixed cache shapes. Short quanta so even tiny segments context
/// switch and touch the OS stream.
fn arbitrary_spec() -> impl Strategy<Value = RunSpec> {
    (
        (1usize..=4, 100u64..400),
        (any::<bool>(), any::<u64>(), 0usize..3),
    )
        .prop_map(|((segments, refs_per_segment), (cold, seed, shape))| {
            let multiprogram = MultiprogramConfig {
                mean_quantum: 50,
                os_burst: 8,
                ..MultiprogramConfig::default()
            };
            let (l1, l2) = match shape {
                0 => (
                    CacheConfig::direct_mapped(256, 16).expect("valid L1"),
                    CacheConfig::new(2048, 32, 4).expect("valid L2"),
                ),
                1 => (
                    CacheConfig::direct_mapped(512, 32).expect("valid L1"),
                    CacheConfig::new(4096, 32, 8).expect("valid L2"),
                ),
                _ => (
                    CacheConfig::new(512, 16, 2).expect("valid L1"),
                    CacheConfig::new(2048, 16, 4).expect("valid L2"),
                ),
            };
            RunSpec {
                l1,
                l2,
                trace: AtumLikeConfig {
                    segments,
                    refs_per_segment,
                    flush_between_segments: cold,
                    multiprogram,
                },
                seed,
                tag_bits: 14,
            }
        })
}

/// Bit-identity via serialization, as in `explain_props`: two outcomes
/// are the same iff every field (including f64 ratios) agrees exactly.
fn fingerprint(outcome: &seta::sim::RunOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

/// The unsharded reference: one sequential pass over the whole trace.
fn sequential(spec: &RunSpec) -> String {
    let strategies = standard_strategies(spec.l2.associativity(), spec.tag_bits);
    fingerprint(&simulate(
        spec.l1,
        spec.l2,
        AtumLike::new(spec.trace.clone(), spec.seed),
        &strategies,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded work queue returns outcomes bit-identical to the
    /// sequential reference, in spec order, at every worker count —
    /// sequential fallback (1), fewer workers than shards, and more
    /// workers than shards.
    #[test]
    fn sharded_sweep_is_bit_identical_to_sequential(
        specs in proptest::collection::vec(arbitrary_spec(), 1..=3),
    ) {
        let expected: Vec<String> = specs.iter().map(sequential).collect();
        for threads in [1usize, 2, 16] {
            let outcomes = simulate_many_with_threads(&specs, threads);
            prop_assert_eq!(outcomes.len(), specs.len());
            for (i, out) in outcomes.iter().enumerate() {
                prop_assert_eq!(
                    &fingerprint(out),
                    &expected[i],
                    "spec {} diverged at {} worker(s)",
                    i,
                    threads
                );
            }
        }
    }

    /// The default entry point (auto-sized worker pool) agrees too.
    #[test]
    fn default_worker_pool_agrees_with_sequential(spec in arbitrary_spec()) {
        let expected = sequential(&spec);
        let outcomes = simulate_many(std::slice::from_ref(&spec));
        prop_assert_eq!(outcomes.len(), 1);
        prop_assert_eq!(&fingerprint(&outcomes[0]), &expected);
    }
}
