//! Workload calibration against the paper's Table 3.
//!
//! The synthetic ATUM-like workload substitutes for the paper's
//! proprietary traces (see DESIGN.md §4). These tests pin the calibration:
//! the measured L1 miss ratios must stay in bands around the published
//! values and preserve their ordering, and the L2 request mix must look
//! like the paper's (write-backs ≈ 21% of requests).

use seta::sim::config::table3_l1_miss_ratios;
use seta::sim::runner::{simulate, standard_strategies};
use seta::trace::gen::{AtumLike, AtumLikeConfig};

fn measured_l1_miss_ratios() -> Vec<(String, f64, f64, f64)> {
    // 3 segments × 120K references: enough to warm a 16K L1 many times
    // over while keeping the test quick in debug builds.
    let mut cfg = AtumLikeConfig::paper_like();
    cfg.segments = 3;
    cfg.refs_per_segment = 120_000;
    table3_l1_miss_ratios()
        .into_iter()
        .map(|(preset, published)| {
            let out = simulate(
                preset.l1().expect("valid preset"),
                preset.l2(4).expect("valid preset"),
                AtumLike::new(cfg.clone(), 0xCACE),
                &standard_strategies(4, 16),
            );
            (
                preset.label(),
                published,
                out.hierarchy.l1_miss_ratio(),
                out.hierarchy.write_back_fraction(),
            )
        })
        .collect()
}

#[test]
fn l1_miss_ratios_fall_in_calibration_bands() {
    for (label, published, measured, _) in measured_l1_miss_ratios() {
        assert!(
            measured > published * 0.5 && measured < published * 2.0,
            "{label}: measured {measured:.4} outside [0.5x, 2x] of paper {published:.4}"
        );
    }
}

#[test]
fn miss_ratio_ordering_matches_table3() {
    let rows = measured_l1_miss_ratios();
    // 4K-16 > 16K-16 > 16K-32, as in the paper.
    assert!(
        rows[0].2 > rows[1].2,
        "4K-16 ({:.4}) should miss more than 16K-16 ({:.4})",
        rows[0].2,
        rows[1].2
    );
    assert!(
        rows[1].2 > rows[2].2,
        "16K-16 ({:.4}) should miss more than 16K-32 ({:.4})",
        rows[1].2,
        rows[2].2
    );
}

#[test]
fn write_back_fraction_is_near_the_papers() {
    // "Write-backs are approximately 20% of the requests to the level two
    // cache" (Table 4 shows 0.2083–0.2302).
    for (label, _, _, wb) in measured_l1_miss_ratios() {
        assert!(
            wb > 0.12 && wb < 0.35,
            "{label}: write-back fraction {wb:.4} far from the paper's ~0.21"
        );
    }
}
