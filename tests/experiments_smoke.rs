//! End-to-end smoke tests: every experiment runs at reduced scale,
//! renders a table, and serializes to JSON.

use seta::sim::config::HierarchyPreset;
use seta::sim::experiments::{fig3, fig4, fig5, fig6, table1, table2, table4, ExperimentParams};

fn params() -> ExperimentParams {
    let mut p = ExperimentParams::scaled(1);
    p.trace.segments = 2;
    p.trace.refs_per_segment = 15_000;
    p.preset = HierarchyPreset::new(4 * 1024, 16, 16 * 1024, 32);
    p
}

#[test]
fn table1_renders_and_serializes() {
    let t = table1::run(16);
    assert!(t.render().contains("Traditional"));
    let json = serde_json::to_string(&t).expect("serializes");
    assert!(json.contains("Naive"));
    let back: table1::Table1 = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, t);
}

#[test]
fn table2_renders_and_serializes() {
    let t = table2::run();
    assert!(t.render().contains("Dynamic RAM"));
    let json = serde_json::to_string(&t).expect("serializes");
    let back: table2::Table2 = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, t);
}

#[test]
fn fig3_renders_and_serializes() {
    let f = fig3::run_with_assocs(&params(), &[1, 4]);
    assert_eq!(f.series.len(), 4);
    assert!(f.render().contains("Figure 3"));
    let json = serde_json::to_string(&f).expect("serializes");
    let back: fig3::Fig3 = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, f);
}

#[test]
fn fig4_renders_and_serializes() {
    let f = fig4::run_with_assocs(&params(), &[4]);
    assert!(f.render().contains("read-in"));
    let json = serde_json::to_string(&f).expect("serializes");
    let back: fig4::Fig4 = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, f);
}

#[test]
fn fig5_renders_and_serializes() {
    let f = fig5::run_with_assocs(&params(), &[4]);
    assert_eq!(f.per_assoc.len(), 1);
    assert!(f.render().contains("MRU"));
    let json = serde_json::to_string(&f).expect("serializes");
    let back: fig5::Fig5 = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, f);
}

#[test]
fn fig6_renders_and_serializes() {
    let f = fig6::run_with(&params(), &[16], &[4]);
    assert_eq!(f.cells.len(), 1);
    assert!(f.render().contains("XOR"));
    let json = serde_json::to_string(&f).expect("serializes");
    let back: fig6::Fig6 = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, f);
}

#[test]
fn table4_renders_and_serializes() {
    let presets = vec![HierarchyPreset::new(4 * 1024, 16, 16 * 1024, 32)];
    let t = table4::run_with(&params(), &presets, &[4]);
    assert_eq!(t.rows.len(), 1);
    assert!(t.render().contains("4-Way"));
    let json = serde_json::to_string(&t).expect("serializes");
    let back: table4::Table4 = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, t);
}

#[test]
fn experiments_are_deterministic_across_invocations() {
    let a = fig4::run_with_assocs(&params(), &[4]);
    let b = fig4::run_with_assocs(&params(), &[4]);
    assert_eq!(a, b);
}

#[test]
fn figures_emit_csv() {
    let p = params();
    let f3 = fig3::run_with_assocs(&p, &[4]);
    let csv = f3.csv();
    assert!(csv.starts_with("Method,"), "{csv}");
    assert_eq!(csv.lines().count(), 5, "header + 4 strategies:\n{csv}");

    let f5 = fig5::run_with_assocs(&p, &[4]);
    assert!(f5.left_csv().starts_with("Assoc,"));
    assert!(f5.right_csv().contains("f_i"));

    let f6 = fig6::run_with(&p, &[16], &[4]);
    assert!(f6.csv().contains("Lower"));

    let f4 = fig4::run_with_assocs(&p, &[4]);
    assert!(f4.csv().contains("a=4 hit"));

    let presets = vec![HierarchyPreset::new(4 * 1024, 16, 16 * 1024, 32)];
    let t4 = table4::run_with(&p, &presets, &[4]);
    assert!(t4.csv().starts_with("config,assoc,"), "{}", t4.csv());
}

#[test]
fn extension_studies_run_and_serialize() {
    use seta::sim::experiments::{
        banked, contention, deep, hashrehash, invalidation, policy, timing_effective, warmth,
    };
    let p = params();

    let b = banked::run_with_assocs(&p, &[4]);
    assert!(b.render().contains("Banked"));
    let json = serde_json::to_string(&b).expect("serializes");
    assert_eq!(
        serde_json::from_str::<banked::BankedStudy>(&json).expect("deserializes"),
        b
    );

    let h = hashrehash::run(&p);
    assert!(h.render().contains("hash-rehash"));
    let json = serde_json::to_string(&h).expect("serializes");
    assert_eq!(
        serde_json::from_str::<hashrehash::HashRehashStudy>(&json).expect("deserializes"),
        h
    );

    let w = warmth::run_with_assoc(&p, 4);
    assert!(w.render().contains("warm"));
    let json = serde_json::to_string(&w).expect("serializes");
    assert_eq!(
        serde_json::from_str::<warmth::WarmthStudy>(&json).expect("deserializes"),
        w
    );

    let i = invalidation::run_with(&p, &[1, 4], 500, 4);
    assert!(i.render().contains("invalidations"));
    let json = serde_json::to_string(&i).expect("serializes");
    assert_eq!(
        serde_json::from_str::<invalidation::InvalidationStudy>(&json).expect("deserializes"),
        i
    );

    let t = timing_effective::run_with_assocs(&p, &[4]);
    assert!(t.render().contains("Effective"));
    let json = serde_json::to_string(&t).expect("serializes");
    assert_eq!(
        serde_json::from_str::<timing_effective::EffectiveTiming>(&json).expect("deserializes"),
        t
    );

    let c = contention::run_with(&p, 400.0, &[1, 8]);
    assert!(c.render().contains("contention"));
    let json = serde_json::to_string(&c).expect("serializes");
    assert_eq!(
        serde_json::from_str::<contention::ContentionStudy>(&json).expect("deserializes"),
        c
    );

    let s = policy::run_with_assoc(&p, 4);
    assert!(s.render().contains("Policy"));
    let json = serde_json::to_string(&s).expect("serializes");
    assert_eq!(
        serde_json::from_str::<policy::PolicyStudy>(&json).expect("deserializes"),
        s
    );

    let d = deep::run_with(
        &p,
        seta::cache::CacheConfig::direct_mapped(2 * 1024, 16).expect("valid L1"),
        seta::cache::CacheConfig::new(8 * 1024, 32, 4).expect("valid L2"),
        &[4],
        |a| seta::cache::CacheConfig::new(32 * 1024, 64, a).expect("valid L3"),
    );
    assert!(d.render().contains("Three-level"));
    let json = serde_json::to_string(&d).expect("serializes");
    assert_eq!(
        serde_json::from_str::<deep::DeepStudy>(&json).expect("deserializes"),
        d
    );
}
