//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in.
//!
//! Implemented directly over `proc_macro::TokenTree` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace derives on:
//!
//! * structs with named fields;
//! * enums whose variants are unit or one-field tuples (newtype).
//!
//! Generics, serde attributes, and other exotica are rejected with a
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (the vendored trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// `true` for one-field tuple (newtype) variants, `false` for unit.
    newtype: bool,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("valid error tokens")
        }
    };
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => struct_serialize(name, fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => struct_deserialize(name, fields),
        (Item::Enum { name, variants }, Mode::Serialize) => enum_serialize(name, variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => enum_deserialize(name, variants),
    };
    code.parse().expect("generated impl parses")
}

/// A cursor over a flat token list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attribute pairs (doc comments included).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                    continue;
                }
            }
            break;
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected {what}, found {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`")?;
    let name = c.expect_ident("item name")?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "vendored serde_derive only supports brace-bodied items; `{name}` has {other:?}"
            ))
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        let field = c.expect_ident("field name")?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        fields.push(field);
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let ch = p.as_char();
                    if ch == '<' {
                        depth += 1;
                    } else if ch == '>' {
                        depth -= 1;
                    } else if ch == ',' && depth == 0 {
                        c.pos += 1;
                        break;
                    }
                    c.pos += 1;
                }
                _ => c.pos += 1,
            }
        }
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name")?;
        let newtype = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let has_multiple = Cursor::new(g.stream())
                    .tokens
                    .iter()
                    .any(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','));
                // A trailing comma after one type would false-positive here,
                // but the workspace writes `Variant(Type)` without one.
                if has_multiple {
                    return Err(format!(
                        "vendored serde_derive supports at most one field in variant `{name}`"
                    ));
                }
                c.pos += 1;
                true
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "vendored serde_derive does not support struct variant `{name}`"
                ));
            }
            _ => false,
        };
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                return Err(format!("explicit discriminant on `{name}` is unsupported"));
            }
        }
        variants.push(Variant { name, newtype });
        // Consume the separating comma, if present.
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.pos += 1;
            }
        }
    }
    Ok(variants)
}

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let inserts: String = fields
        .iter()
        .map(|f| {
            format!(
                "m.insert(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&self.{f}));\n"
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut m = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Object(m)\n\
             }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let builds: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(obj.get({f:?})\
                 .ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?,\n"
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", v))?;\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {builds}\
                 }})\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            if v.newtype {
                format!(
                    "{name}::{vn}(x0) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(::std::string::String::from({vn:?}), \
                                  ::serde::Serialize::to_value(x0));\n\
                         ::serde::Value::Object(m)\n\
                     }}\n"
                )
            } else {
                format!(
                    "{name}::{vn} => ::serde::Value::String(\
                     ::std::string::String::from({vn:?})),\n"
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| !v.newtype)
        .map(|v| {
            let vn = &v.name;
            format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n")
        })
        .collect();
    let newtype_arms: String = variants
        .iter()
        .filter(|v| v.newtype)
        .map(|v| {
            let vn = &v.name;
            format!(
                "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                 ::serde::Deserialize::from_value(inner)?)),\n"
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"unknown variant {{other:?}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                         let (k, inner) = m.iter().next().expect(\"len checked\");\n\
                         let _ = inner;\n\
                         match k.as_str() {{\n\
                             {newtype_arms}\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"unknown variant {{other:?}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\
                         \"{name} variant\", v)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
