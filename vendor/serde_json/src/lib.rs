//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], the [`json!`] macro,
//! and the [`Value`] tree (re-exported from the vendored `serde`).
//!
//! Rust's default float formatting is shortest-round-trip, so floats
//! survive `to_string` → `from_str` exactly (the `float_roundtrip`
//! feature of the real crate is therefore a no-op here).

pub use serde::value::{Map, Number, Value};

mod parse;
mod print;

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serializes `value` to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s).map_err(Error)?;
    T::from_value(&v).map_err(Error::from)
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v).map_err(Error::from)
}

/// Builds a [`Value`] from JSON-ish literal syntax with interpolated
/// expressions, like the real `serde_json::json!`. Values may be nested
/// JSON literals or arbitrary serializable Rust expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Token muncher behind [`json!`]; the same recursive structure as the
/// real crate's, separating top-level commas from commas inside
/// interpolated expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////// array elements ////////////////////

    // Done with trailing comma.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    // Done without trailing comma.
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is `null`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    // Next element is `true`.
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    // Next element is `false`.
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    // Next element is an array literal.
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*
        )
    };
    // Next element is an object literal.
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*
        )
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!($next),] $($rest)*
        )
    };
    // Last element is an expression without a trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////// object entries ////////////////////

    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the completed entry, then continue after its comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry (no trailing comma).
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
    };
    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*
        );
    };
    // Next value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*
        );
    };
    // Next value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*
        );
    };
    // Next value is an array literal.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*
        );
    };
    // Next value is an object literal.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*
        );
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    // Final value is an expression without a trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Accumulate the next token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////// primary forms ////////////////////

    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::value_from(&$other)
    };
}

/// Support shim for [`json!`]: converts any serializable expression.
pub fn value_from<T: serde::Serialize>(value: T) -> Value {
    value.to_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trips() {
        let v = json!({
            "name": "seta",
            "count": 3u64,
            "ratio": 0.125,
            "nested": { "ok": true, "missing": null },
            "list": [1u64, 2u64, 3u64],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": [1u64], "b": "x" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1\n  ],"), "{text}");
    }

    #[test]
    fn strings_escape() {
        let v = json!({ "k": "line\nbreak \"quoted\" \\slash" });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert!(text.contains("\\n"));
        assert!(text.contains("\\\""));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn u64_precision_survives() {
        let n = u64::MAX - 3;
        let text = to_string(&n).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn json_macro_interpolates_expressions() {
        let label = format!("run-{}", 7);
        let v = json!({ "label": label, "twice": (2 * 21) });
        assert_eq!(v["label"].as_str(), Some("run-7"));
        assert_eq!(v["twice"].as_u64(), Some(42));
    }
}
