//! JSON text rendering for the vendored [`Value`] tree.

use crate::{Number, Value};

/// Compact rendering: no whitespace.
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Pretty rendering: 2-space indent, like `serde_json::to_string_pretty`.
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match *n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if f.is_finite() {
                // Rust's Display is shortest-round-trip; force a decimal
                // point or exponent so the text re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Like serde_json: non-finite floats become null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn floats_keep_a_decimal_marker() {
        assert_eq!(compact(&Value::Number(Number::Float(2.0))), "2.0");
        assert_eq!(compact(&Value::Number(Number::Float(0.5))), "0.5");
    }

    #[test]
    fn integers_have_no_decimal_marker() {
        assert_eq!(compact(&Value::Number(Number::PosInt(7))), "7");
        assert_eq!(compact(&Value::Number(Number::NegInt(-7))), "-7");
    }

    #[test]
    fn empty_containers_are_tight() {
        assert_eq!(pretty(&json!({})), "{}");
        assert_eq!(pretty(&json!([])), "[]");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(compact(&Value::String("\u{01}".into())), "\"\\u0001\"");
    }
}
