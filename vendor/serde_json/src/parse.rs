//! A recursive-descent JSON parser for the vendored [`Value`] tree.

use crate::{Map, Number, Value};

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected `{}`, found end of input", b as char)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos - 1)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let code = self.hex4()?;
        // Surrogate pairs for astral-plane characters.
        if (0xD800..0xDC00).contains(&code) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err("unpaired surrogate".into());
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err("invalid low surrogate".into());
            }
            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(c).ok_or_else(|| "invalid surrogate pair".into())
        } else {
            char::from_u32(code).ok_or_else(|| format!("invalid \\u{code:04x}"))
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.bump().ok_or("truncated \\u escape")?;
            code = code * 16
                + (d as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("bad hex digit `{}`", d as char))?;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(format!("invalid UTF-8 lead byte {first:#x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::PosInt(42)));
        assert_eq!(parse("-1").unwrap(), Value::Number(Number::NegInt(-1)));
        assert_eq!(parse("2.5").unwrap(), Value::Number(Number::Float(2.5)));
        assert_eq!(parse("1e3").unwrap(), Value::Number(Number::Float(1000.0)));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v["a"][1]["b"].as_str(), Some("x"));
        assert!(v["c"].is_null());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""line\nA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nA\u{1F600}"));
    }

    #[test]
    fn parses_raw_utf8() {
        let v = parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "tru", "01x", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }
}
