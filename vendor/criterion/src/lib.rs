//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a small wall-clock benchmark harness with the same surface:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Statistics are deliberately simple — each benchmark runs a warm-up
//! iteration plus `sample_size` timed iterations and reports min/median/
//! mean — with none of the real crate's outlier analysis, HTML reports,
//! or baseline comparisons. Invoked with `--test` (as `cargo test
//! --benches` does), every benchmark runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// The benchmark driver; one per `criterion_group!`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode { 1 } else { 100 };
        run_benchmark(name, samples, None, f);
        self
    }
}

/// A collection of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Records the per-iteration workload, reported as elements/sec.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into().id);
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        run_benchmark(&id, samples, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reports are printed
    /// as benchmarks run).
    pub fn finish(self) {}
}

/// A benchmark's identifier, optionally parameterized.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-iteration workload, used to derive a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    remaining: usize,
}

impl Bencher {
    /// Times `f`, once per configured sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up draw, untimed.
        std::hint::black_box(f());
        for _ in 0..self.remaining {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        remaining: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no measurements)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}{rate}",
        min, median, mean
    );
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // test_mode forces one timed sample (+ one warm-up draw).
        assert_eq!(runs, 2);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("forward", "xor").id, "forward/xor");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(7), &41u64, |b, &x| {
            b.iter(|| seen = x + 1)
        });
        g.finish();
        assert_eq!(seen, 42);
    }
}
