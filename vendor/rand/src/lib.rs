//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible implementation: [`rngs::StdRng`] is a
//! xoshiro256++ generator seeded through SplitMix64 (the conventional
//! seeding scheme), and the [`Rng`]/[`SeedableRng`] traits cover exactly
//! the methods the simulators call: `seed_from_u64`, `gen`, `gen_bool`,
//! and `gen_range` over integer and float ranges.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is ChaCha12),
//! so seeded runs are deterministic *within* this workspace but not
//! bit-compatible with runs made against the real crate.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw words.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

/// A range of values `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, bound)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias is
/// below 2^-64 per draw, immaterial for simulation workloads).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

/// Element types `gen_range` can sample uniformly.
///
/// The range impls below are generic over this trait (one impl per range
/// shape, like the real crate) so that an integer literal's type can be
/// inferred from the call site — `tags[rng.gen_range(0..8)]` must resolve
/// the literal to `usize` through the indexing context rather than fall
/// back to `i32`.
pub trait SampleUniform: Copy {
    /// A uniform sample from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// A uniform sample from `[lo, hi]`. Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + uniform_below(rng, span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = f64::draw(rng);
        let v = lo + unit * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::draw(self) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12),
    /// but the same shape: small, fast, and fully determined by
    /// [`SeedableRng::seed_from_u64`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro requires a nonzero state; SplitMix64 only emits the
            // all-zero block for inputs engineered to do so, but guard anyway.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = trues as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn uniformity_is_plausible() {
        // Chi-square-ish sanity check over 16 buckets.
        let mut rng = StdRng::seed_from_u64(5);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }
}
