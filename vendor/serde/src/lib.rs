//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal value-tree serialization framework with the same surface the
//! code relies on: `#[derive(Serialize, Deserialize)]` on named-field
//! structs and simple enums, plus blanket implementations for the standard
//! scalar and container types. `serde_json` (also vendored) renders the
//! [`Value`] tree to JSON text and parses it back.
//!
//! Unlike real serde there is no zero-copy deserialization, no custom
//! `Serializer`/`Deserializer` plumbing, and no attribute support — none
//! of which this workspace needs.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// This value as a serialization tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from a serialization tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// A (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---- scalar impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---- container impls ----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if arr.len() != 2 {
            return Err(Error::msg(format!(
                "expected 2-tuple, got {} items",
                arr.len()
            )));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if arr.len() != 3 {
            return Err(Error::msg(format!(
                "expected 3-tuple, got {} items",
                arr.len()
            )));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; the set has no inherent order.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_maps_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(
            Option::<u64>::from_value(&5u64.to_value()).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn hashset_serializes_sorted() {
        let s: std::collections::HashSet<u64> = [3, 1, 2].into_iter().collect();
        let v = s.to_value();
        let arr = v.as_array().unwrap();
        let nums: Vec<u64> = arr.iter().map(|x| x.as_u64().unwrap()).collect();
        assert_eq!(nums, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
    }
}
