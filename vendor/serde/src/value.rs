//! The serialization value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.

/// Object representation: a sorted map, so serialized output is
/// deterministic (matching `serde_json`'s default `BTreeMap` backend).
pub type Map = std::collections::BTreeMap<String, Value>;

/// A JSON-shaped number.
///
/// Integers keep full 64-bit precision rather than flowing through `f64`,
/// so `u64` counters round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// A number from a `u64`.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// A number from an `i64`.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// A number from an `f64`.
    pub fn from_f64(n: f64) -> Self {
        Number::Float(n)
    }

    /// This number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) => {
                if f.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&f) {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// This number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f) => {
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// This number as `f64` (integers convert lossily past 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

/// A serialization tree: the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map),
}

impl Value {
    /// A short name for this value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects; `None` on everything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Objects index by key; missing keys and non-objects yield `null`,
    /// matching `serde_json`'s behavior.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::PosInt(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(Number::from_i64(n))
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::Float(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_key_is_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(Value::Null["also"].is_null());
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Number::from_i64(-1).as_i64(), Some(-1));
        assert_eq!(Number::from_u64(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Number::from_u64(u64::MAX).as_i64(), None);
        assert_eq!(Number::from_f64(2.0).as_u64(), Some(2));
        assert_eq!(Number::from_f64(2.5).as_u64(), None);
    }
}
