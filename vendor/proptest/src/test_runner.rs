//! Case-count configuration and the per-test RNG.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; kept identical so coverage is
        // comparable.
        ProptestConfig { cases: 256 }
    }
}

/// A deterministic RNG derived from the test's name, so each property
/// sees a fixed, reproducible input stream across runs.
pub fn rng_for(test_name: &str) -> TestRng {
    TestRng::seed_from_u64(fnv1a(test_name.as_bytes()))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_name_keyed_and_stable() {
        let a1 = rng_for("alpha").next_u64();
        let a2 = rng_for("alpha").next_u64();
        let b = rng_for("beta").next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
