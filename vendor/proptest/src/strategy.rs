//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Erases the strategy type, for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// String literals act as generators for a small regex subset, like the
/// real crate: literal characters, the escapes `\PC` (any non-control
/// character), `\d`, `\w`, `\s`, character classes such as `[a-z0-9]`,
/// and the quantifiers `*`, `+`, `?` (repetition capped at 32).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        NonControl,
        Digit,
        Word,
        Space,
        Class(Vec<(char, char)>),
    }

    enum Quant {
        One,
        Opt,
        Star,
        Plus,
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, quant) in parse(pattern) {
            let reps = match quant {
                Quant::One => 1,
                Quant::Opt => rng.gen_range(0u32..2),
                Quant::Star => rng.gen_range(0u32..33),
                Quant::Plus => rng.gen_range(1u32..33),
            };
            for _ in 0..reps {
                out.push(sample(&atom, rng));
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<(Atom, Quant)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        assert_eq!(
                            chars.next(),
                            Some('C'),
                            "vendored proptest only knows the \\PC category"
                        );
                        Atom::NonControl
                    }
                    Some('d') => Atom::Digit,
                    Some('w') => Atom::Word,
                    Some('s') => Atom::Space,
                    Some('n') => Atom::Literal('\n'),
                    Some('t') => Atom::Literal('\t'),
                    Some('r') => Atom::Literal('\r'),
                    Some(other) => Atom::Literal(other),
                    None => panic!("dangling escape in pattern {pattern:?}"),
                },
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi =
                                        chars.next().filter(|&h| h != ']').unwrap_or_else(|| {
                                            panic!("unterminated range in {pattern:?}")
                                        });
                                    ranges.push((lo, hi));
                                } else {
                                    ranges.push((lo, lo));
                                }
                            }
                            None => panic!("unterminated class in {pattern:?}"),
                        }
                    }
                    Atom::Class(ranges)
                }
                other => Atom::Literal(other),
            };
            let quant = match chars.peek() {
                Some('*') => {
                    chars.next();
                    Quant::Star
                }
                Some('+') => {
                    chars.next();
                    Quant::Plus
                }
                Some('?') => {
                    chars.next();
                    Quant::Opt
                }
                _ => Quant::One,
            };
            atoms.push((atom, quant));
        }
        atoms
    }

    fn sample(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Digit => (b'0' + rng.gen_range(0u8..10)) as char,
            Atom::Space => *[' ', '\t'].get(rng.gen_range(0usize..2)).unwrap(),
            Atom::Word => {
                const WORD: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                WORD[rng.gen_range(0usize..WORD.len())] as char
            }
            Atom::NonControl => {
                // Mostly printable ASCII, with some multi-byte characters
                // mixed in to exercise UTF-8 handling.
                if rng.gen_range(0u32..10) < 9 {
                    (0x20 + rng.gen_range(0u8..0x5F)) as char
                } else {
                    const EXOTIC: &[char] = &['é', 'Ω', 'ß', '世', '界', '→', '😀', 'Ф'];
                    EXOTIC[rng.gen_range(0usize..EXOTIC.len())]
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0usize..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                    .expect("class range stays in scalar values")
            }
        }
    }
}

/// Types with a canonical whole-domain strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A weighted choice among type-erased strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; every weight must be positive.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().all(|(w, _)| *w > 0), "weights must be positive");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            let w = *weight as u64;
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("pick below total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = rng_for("map_and_tuple_compose");
        let s = (0u64..10, 0u8..2).prop_map(|(a, b)| a * 2 + b as u64);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = rng_for("union_respects_weights_roughly");
        let s = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..10_000).filter(|_| s.generate(&mut rng)).count();
        assert!((8_500..9_500).contains(&trues), "{trues}");
    }

    #[test]
    fn vec_lengths_honor_size() {
        let mut rng = rng_for("vec_lengths_honor_size");
        let exact = crate::collection::vec(0u8..4, 12);
        assert_eq!(exact.generate(&mut rng).len(), 12);
        let ranged = crate::collection::vec(0u8..4, 1..5);
        for _ in 0..100 {
            let len = ranged.generate(&mut rng).len();
            assert!((1..5).contains(&len));
        }
    }
}
