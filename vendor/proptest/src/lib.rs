//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal property-testing harness with the same surface syntax:
//! [`proptest!`], [`prop_oneof!`], `prop_assert*`, [`strategy::Strategy`]
//! with `prop_map`, `any::<T>()`, `Just`, ranges as strategies, and
//! [`collection::vec`].
//!
//! Differences from the real crate, accepted for an offline build:
//!
//! * no shrinking — a failing case reports the generated inputs via the
//!   ordinary panic message, but is not minimized;
//! * generation is a fixed deterministic stream per test (seeded from the
//!   test's name), so failures reproduce exactly across runs;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `TestCaseError`.

pub mod strategy;
pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of permissible collection lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import module mirrored from the real crate.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
///
/// Unlike the real crate this panics directly (no `TestCaseError`), which
/// is equivalent for a harness without shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// A weighted (or unweighted) choice between strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Declares property-test functions: each `pat in strategy` argument is
/// drawn fresh for every case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                let _ = case;
                // The closure gives `return Ok(())` in test bodies somewhere
                // to return to, mirroring the real crate's `TestCaseResult`.
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(reason) = outcome {
                    panic!("property case rejected: {reason}");
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}
