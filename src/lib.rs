//! # seta — inexpensive implementations of set-associativity
//!
//! A full reproduction of *R. E. Kessler, R. Jooss, A. Lebeck and
//! M. D. Hill, "Inexpensive Implementations of Set-Associativity",
//! ISCA 1989*: serial, MRU-ordered, and partial-compare cache lookup
//! schemes, priced in tag probes against a trace-driven two-level
//! write-back cache hierarchy.
//!
//! This facade crate re-exports the four library crates:
//!
//! * [`core`] (`seta-core`) — the lookup strategies, tag transformations,
//!   and the paper's analytical and timing models.
//! * [`cache`] (`seta-cache`) — set-associative write-back caches and the
//!   two-level hierarchy.
//! * [`trace`] (`seta-trace`) — trace formats and the synthetic
//!   multiprogrammed workload generator.
//! * [`sim`] (`seta-sim`) — the experiment harness that regenerates every
//!   table and figure of the paper.
//! * [`obs`] (`seta-obs`) — opt-in observability: metrics registry, run
//!   manifests, JSONL/Prometheus exporters, and a progress heartbeat.
//! * [`serve`] (`seta-serve`) — the sharded concurrent cache service and
//!   its multi-client load generator.
//!
//! # Quickstart
//!
//! Price the four lookup implementations on a multiprogrammed workload:
//!
//! ```
//! use seta::cache::CacheConfig;
//! use seta::sim::runner::{simulate, standard_strategies};
//! use seta::trace::gen::{AtumLike, AtumLikeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut workload = AtumLikeConfig::paper_like();
//! workload.segments = 2;
//! workload.refs_per_segment = 20_000;
//!
//! let l1 = CacheConfig::direct_mapped(4 * 1024, 16)?;
//! let l2 = CacheConfig::new(16 * 1024, 32, 4)?;
//! let out = simulate(l1, l2, AtumLike::new(workload, 42), &standard_strategies(4, 16));
//!
//! for s in &out.strategies {
//!     println!("{:28} {:.2} probes/access", s.name, s.probes.total_mean());
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use seta_cache as cache;
pub use seta_core as core;
pub use seta_obs as obs;
pub use seta_serve as serve;
pub use seta_sim as sim;
pub use seta_trace as trace;
